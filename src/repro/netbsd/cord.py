"""Cord-style code layout compaction (Section 5.4).

Mosberger et al. "compact the working set of protocol code by moving
rarely executed basic blocks to the end of functions to avoid diluting
the cache with instructions that do not get executed"; the paper
concludes from Table 3 that "about 25% of instructions fetched into the
cache are not executed, and therefore that a perfectly dense cache
layout would reduce the number of cache lines in the working set by
about 25%".

This module measures that *cache dilution* on a receive-path trace and
applies the ideal transformation: per function, executed words are
repacked contiguously from the function's base (untaken branches and
error paths move to the end), producing a new trace whose working set
is what a Cord/Mosberger-optimized kernel would show.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.workingset import Category, WorkingSetAnalyzer
from ..trace.buffer import TraceBuffer
from ..trace.record import MemRef
from .receive_path import LINE, WORD, ReceivePathModel


@dataclass(frozen=True)
class DilutionReport:
    """Cache-dilution measurement for the code working set.

    Attributes
    ----------
    executed_bytes:
        Bytes of instructions actually executed (word granularity).
    fetched_bytes:
        Bytes fetched into the cache (line granularity x line size).
    lines_before / lines_after:
        Working-set lines with the real layout versus the perfectly
        dense layout.
    """

    executed_bytes: int
    fetched_bytes: int
    lines_before: int
    lines_after: int

    @property
    def dilution(self) -> float:
        """Fraction of fetched instruction bytes never executed."""
        if not self.fetched_bytes:
            return 0.0
        return 1.0 - self.executed_bytes / self.fetched_bytes

    @property
    def line_savings(self) -> float:
        """Fractional working-set line reduction from dense layout."""
        if not self.lines_before:
            return 0.0
        return 1.0 - self.lines_after / self.lines_before


def measure_dilution(analyzer: WorkingSetAnalyzer, line_size: int = 32) -> DilutionReport:
    """Measure code dilution from an existing working-set analysis."""
    at_word = analyzer.totals_at(analyzer.atom_size)[Category.CODE]
    at_line = analyzer.totals_at(line_size)[Category.CODE]
    dense_lines = -(-at_word.bytes // line_size)
    return DilutionReport(
        executed_bytes=at_word.bytes,
        fetched_bytes=at_line.bytes,
        lines_before=at_line.lines,
        lines_after=dense_lines,
    )


def compact_trace(model: ReceivePathModel, trace: TraceBuffer) -> TraceBuffer:
    """Rewrite a trace as a dense per-function layout would produce it.

    For every function, executed words are renumbered 0, 1, 2, ... in
    first-execution order and placed from the function's base address;
    data references and trace structure are untouched.  The result is
    analyzable by the same pipeline as the original.
    """
    # First pass: assign packed offsets per function in first-touch order.
    packed: dict[str, dict[int, int]] = {}
    for ref in trace.refs:
        if not ref.is_code() or ref.fn is None:
            continue
        mapping = packed.setdefault(ref.fn, {})
        word = ref.addr // WORD
        if word not in mapping:
            mapping[word] = len(mapping)

    bases = {
        name: placed.base for name, placed in model._functions.items()
    }
    compacted = TraceBuffer()
    compacted.phase_marks = list(trace.phase_marks)
    compacted.call_events = list(trace.call_events)
    for ref in trace.refs:
        if ref.is_code() and ref.fn in packed and ref.fn in bases:
            offset = packed[ref.fn][ref.addr // WORD]
            new_addr = bases[ref.fn] + offset * WORD
            compacted.refs.append(MemRef(ref.kind, new_addr, ref.size, ref.fn))
        else:
            compacted.refs.append(ref)
    return compacted


@dataclass(frozen=True)
class CordResult:
    """Before/after working sets for the compaction experiment."""

    before: DilutionReport
    lines_measured_after: int

    def render(self) -> str:
        report = self.before
        return (
            "Cord-style layout compaction (Section 5.4)\n"
            "==========================================\n"
            f"executed instruction bytes: {report.executed_bytes}\n"
            f"fetched (line-granular) bytes: {report.fetched_bytes}\n"
            f"cache dilution: {report.dilution:.1%} "
            f"(paper: ~25% of fetched instructions not executed)\n"
            f"working-set lines: {report.lines_before} -> "
            f"{self.lines_measured_after} measured after compaction "
            f"({report.lines_after} ideal dense), "
            f"saving {1 - self.lines_measured_after / report.lines_before:.1%}"
        )


def run_cord_experiment(seed: int = 0) -> CordResult:
    """Measure dilution and verify it by actually compacting the trace."""
    model = ReceivePathModel(seed=seed)
    trace = model.build_trace()
    analyzer = model.analyze(trace)
    before = measure_dilution(analyzer)

    compacted = compact_trace(model, trace)
    after_analyzer = WorkingSetAnalyzer(model.classifier())
    after_analyzer.consume(model.table1_refs(compacted))
    after = after_analyzer.totals_at(LINE)[Category.CODE]
    return CordResult(before=before, lines_measured_after=after.lines)
