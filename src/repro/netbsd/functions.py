"""The Figure-1 function catalog.

Every function shown in the paper's Figure 1 (the active-code map of the
NetBSD/Alpha TCP receive & acknowledge path) with its published size in
bytes, assigned to the Table-1 layer taxonomy.  Figure 1's list is not
the complete kernel: a few layers' published working sets exceed the
summed sizes of the functions the figure shows, so the catalog includes
additional *modeled* entries (marked ``source="modeled"``) with
plausible names and sizes to carry the remainder; DESIGN.md documents
this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigurationError

if TYPE_CHECKING:
    from ..machine.program import Program

# Table-1 layer names.
LAYER_ETHERNET = "Ethernet"
LAYER_IP = "IP"
LAYER_TCP = "TCP"
LAYER_SOCKET_LOW = "Socket low"
LAYER_SOCKET_HIGH = "Socket high"
LAYER_KERNEL = "Kernel entry/exit"
LAYER_PROCESS = "Process control"
LAYER_BUFFER = "Buffer mgmt"
LAYER_COMMON = "Common"
LAYER_COPY = "Copy, checksum"

ALL_LAYERS = (
    LAYER_ETHERNET,
    LAYER_IP,
    LAYER_TCP,
    LAYER_SOCKET_LOW,
    LAYER_SOCKET_HIGH,
    LAYER_KERNEL,
    LAYER_PROCESS,
    LAYER_BUFFER,
    LAYER_COMMON,
    LAYER_COPY,
)


@dataclass(frozen=True)
class FunctionSpec:
    """One kernel function: name, total size, owning layer."""

    name: str
    size: int
    layer: str
    source: str = "figure1"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"function {self.name!r} needs positive size")
        if self.layer not in ALL_LAYERS:
            raise ConfigurationError(f"unknown layer {self.layer!r}")
        if self.source not in ("figure1", "modeled"):
            raise ConfigurationError(f"unknown source {self.source!r}")


def _fn(name: str, size: int, layer: str, source: str = "figure1") -> FunctionSpec:
    return FunctionSpec(name, size, layer, source)


#: The full catalog, in rough address order of Figure 1 (top to bottom).
CATALOG: tuple[FunctionSpec, ...] = (
    # --- Copy / checksum ------------------------------------------------
    _fn("in_cksum", 1104, LAYER_COPY),
    _fn("bcopy", 620, LAYER_COPY),
    _fn("copyout", 132, LAYER_COPY),
    _fn("copyin", 132, LAYER_COPY, "modeled"),
    _fn("bzero", 184, LAYER_COPY),
    _fn("uiomove", 424, LAYER_COPY),
    _fn("ntohl", 64, LAYER_COPY),
    _fn("ntohs", 32, LAYER_COPY),
    _fn("ovbcopy", 448, LAYER_COPY, "modeled"),
    _fn("imin_imax", 96, LAYER_COPY, "modeled"),
    # --- Kernel entry/exit ----------------------------------------------
    _fn("syscall", 1176, LAYER_KERNEL),
    _fn("trap", 2008, LAYER_KERNEL),
    _fn("XentInt", 208, LAYER_KERNEL),
    _fn("XentSys", 148, LAYER_KERNEL),
    _fn("rei", 320, LAYER_KERNEL),
    _fn("pal_swpipl", 8, LAYER_KERNEL),
    # --- Common (interrupt plumbing, time, spl) ---------------------------
    _fn("microtime", 288, LAYER_COMMON),
    _fn("spl0", 136, LAYER_COMMON),
    _fn("splx", 128, LAYER_COMMON, "modeled"),
    _fn("splnet", 112, LAYER_COMMON, "modeled"),
    _fn("netintr", 344, LAYER_COMMON),
    _fn("do_sir", 200, LAYER_COMMON),
    _fn("interrupt", 184, LAYER_COMMON),
    _fn("schednetisr", 96, LAYER_COMMON, "modeled"),
    _fn("logwakeup", 160, LAYER_COMMON, "modeled"),
    # --- Process control ---------------------------------------------------
    _fn("setrunqueue", 176, LAYER_PROCESS),
    _fn("mi_switch", 520, LAYER_PROCESS),
    _fn("cpu_switch", 460, LAYER_PROCESS),
    _fn("tsleep", 1096, LAYER_PROCESS),
    _fn("wakeup", 488, LAYER_PROCESS),
    _fn("selwakeup", 456, LAYER_PROCESS),
    _fn("idle", 68, LAYER_PROCESS),
    _fn("remrq", 144, LAYER_PROCESS, "modeled"),
    # --- Device / Ethernet ---------------------------------------------
    _fn("leintr", 3264, LAYER_ETHERNET),
    _fn("lestart", 1824, LAYER_ETHERNET),
    _fn("lewritereg", 216, LAYER_ETHERNET),
    _fn("asic_intr", 392, LAYER_ETHERNET),
    _fn("tc_3000_500_iointr", 848, LAYER_ETHERNET),
    _fn("copyfrombuf_gap2", 240, LAYER_ETHERNET),
    _fn("copytobuf_gap2", 256, LAYER_ETHERNET),
    _fn("copyfrombuf_gap16", 208, LAYER_ETHERNET),
    _fn("copytobuf_gap16", 208, LAYER_ETHERNET),
    _fn("zerobuf_gap16", 184, LAYER_ETHERNET),
    _fn("ether_input", 2728, LAYER_ETHERNET),
    _fn("ether_output", 3632, LAYER_ETHERNET),
    _fn("arpresolve", 944, LAYER_ETHERNET),
    # --- IP ---------------------------------------------------------------
    _fn("ipintr", 2648, LAYER_IP),
    _fn("in_broadcast", 288, LAYER_IP),
    _fn("ip_output", 5120, LAYER_IP),
    # --- TCP ---------------------------------------------------------------
    _fn("tcp_input", 11872, LAYER_TCP),
    _fn("tcp_output", 4872, LAYER_TCP),
    _fn("tcp_usrreq", 2352, LAYER_TCP),
    # --- Socket low -------------------------------------------------------
    _fn("soreceive", 5536, LAYER_SOCKET_LOW),
    _fn("sbappend", 160, LAYER_SOCKET_LOW),
    _fn("sbcompress", 704, LAYER_SOCKET_LOW),
    _fn("sowakeup", 360, LAYER_SOCKET_LOW),
    _fn("sbwait", 160, LAYER_SOCKET_LOW),
    # --- Socket high -------------------------------------------------------
    _fn("read", 312, LAYER_SOCKET_HIGH),
    _fn("soo_read", 80, LAYER_SOCKET_HIGH),
    _fn("seltrue", 64, LAYER_SOCKET_HIGH, "modeled"),
    _fn("getsock", 192, LAYER_SOCKET_HIGH, "modeled"),
    # --- Buffer management ------------------------------------------------
    _fn("malloc", 1608, LAYER_BUFFER),
    _fn("free", 856, LAYER_BUFFER),
    _fn("m_adj", 376, LAYER_BUFFER),
    _fn("m_get", 704, LAYER_BUFFER, "modeled"),
    _fn("m_free", 592, LAYER_BUFFER, "modeled"),
    _fn("m_copym", 896, LAYER_BUFFER, "modeled"),
    _fn("m_pullup", 512, LAYER_BUFFER, "modeled"),
    _fn("sbreserve", 256, LAYER_BUFFER, "modeled"),
    _fn("mb_alloc_cluster", 448, LAYER_BUFFER, "modeled"),
)


def catalog_by_name() -> dict[str, FunctionSpec]:
    """Name → spec for the whole catalog."""
    return {spec.name: spec for spec in CATALOG}


def functions_of_layer(layer: str) -> list[FunctionSpec]:
    """Catalog entries belonging to one Table-1 layer."""
    if layer not in ALL_LAYERS:
        raise ConfigurationError(f"unknown layer {layer!r}")
    return [spec for spec in CATALOG if spec.layer == layer]


def fn_to_layer_map() -> dict[str, str]:
    """The function→layer map the trace classifier uses."""
    return {spec.name: spec.layer for spec in CATALOG}


def layer_catalog_bytes(layer: str) -> int:
    """Total catalogued code bytes in one layer."""
    return sum(spec.size for spec in functions_of_layer(layer))


def layer_code_sizes() -> dict[str, int]:
    """Catalogued code bytes of every Table-1 layer, in taxonomy order."""
    return {layer: layer_catalog_bytes(layer) for layer in ALL_LAYERS}


def catalog_program() -> Program:
    """The Figure-1 catalog as an (unplaced) :class:`Program`.

    One code region per kernel function, ready to hand to a
    :class:`~repro.machine.layout.MemoryLayout` and the static
    conflict analyzer — the same description the simulator places.
    """
    from ..machine.program import Program

    program = Program()
    for spec in CATALOG:
        program.add_code(spec.name, spec.size)
    return program
