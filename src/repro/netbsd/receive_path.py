"""The scripted TCP receive-&-acknowledge trace (Tables 1-3, Figure 1).

This module is the stand-in for the paper's in-kernel Alpha tracing
apparatus: it generates a memory-reference trace of one receive-and-
acknowledge iteration through the NetBSD stack, structured as the three
phases of Table 2 (entry / device interrupt / exit), over the function
catalog of Figure 1.

Calibration targets:

* per-layer code line budgets equal Table 1 exactly (by construction);
* per-layer read-only/mutable data line budgets equal Table 1 exactly;
* sub-line touch densities reproduce Table 3's line-size sensitivities
  (via :mod:`repro.netbsd.touchmap`);
* per-phase code/read/write totals approximate Figure 1's annotations
  (stack, message-buffer, and DMA-ring regions — which Table 1's
  caption excludes but the phase totals include — are modelled with
  tuned aux touch counts).

The emitted trace is a plain :class:`~repro.trace.TraceBuffer`; all
analysis runs through the generic pipeline.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..cache.workingset import WorkingSetAnalyzer
from ..errors import ConfigurationError
from ..obs.runtime import active_recorder
from ..trace.buffer import TraceBuffer
from ..trace.classify import LayerClassifier
from ..trace.record import MemRef, RefKind
from .functions import ALL_LAYERS, CATALOG, FunctionSpec, fn_to_layer_map
from .layers import PAPER_TABLE1
from .touchmap import (
    WORD,
    WORDS_PER_LINE,
    synthesize_code_touch_words,
    synthesize_data_touch_words,
)

LINE = WORD * WORDS_PER_LINE  # 32

PHASE_ENTRY = "entry"
PHASE_INTR = "pkt intr"
PHASE_EXIT = "exit"
PHASES = (PHASE_ENTRY, PHASE_INTR, PHASE_EXIT)


def hot_function_names() -> tuple[str, ...]:
    """Functions the receive path actually executes (Figure 1's map).

    This is the hot working set the static conflict analyzer checks:
    the catalog minus functions the traced path never touches.
    """
    return tuple(CODE_PLAN)


@dataclass(frozen=True)
class CodePlan:
    """Per-phase touched-line counts for one function.

    Phases touch a *prefix* of the function's touch map, so a function
    appearing in several phases contributes ``max(entry, intr, exit)``
    lines to the working set; per-layer sums of that maximum must equal
    Table 1 (checked at model build time).
    """

    entry: int = 0
    intr: int = 0
    exit: int = 0

    @property
    def budget(self) -> int:
        return max(self.entry, self.intr, self.exit)

    def lines_in(self, phase: str) -> int:
        return {PHASE_ENTRY: self.entry, PHASE_INTR: self.intr,
                PHASE_EXIT: self.exit}[phase]


#: The phase plan.  Line counts were chosen so that (a) each layer's
#: budget sum hits Table 1 exactly and (b) per-phase sums land near the
#: Figure 1 per-column code totals (94 / 427 / 570 lines).
CODE_PLAN: dict[str, CodePlan] = {
    # Copy / checksum (layer budget 101 lines)
    "in_cksum": CodePlan(intr=31),
    "bcopy": CodePlan(intr=10, exit=20),
    "copyout": CodePlan(exit=5),
    "copyin": CodePlan(exit=5),
    "bzero": CodePlan(intr=6),
    "uiomove": CodePlan(exit=14),
    "ntohl": CodePlan(intr=2, exit=2),
    "ntohs": CodePlan(intr=1, exit=1),
    "ovbcopy": CodePlan(exit=14),
    "imin_imax": CodePlan(exit=3),
    # Kernel entry/exit (budget 37)
    "syscall": CodePlan(entry=10, exit=16),
    "trap": CodePlan(intr=6),
    "XentInt": CodePlan(intr=5),
    "XentSys": CodePlan(entry=4, exit=4),
    "rei": CodePlan(intr=3, exit=5),
    "pal_swpipl": CodePlan(intr=1, exit=1),
    # Common (budget 51)
    "microtime": CodePlan(intr=5, exit=9),
    "spl0": CodePlan(entry=4, intr=2, exit=4),
    "splx": CodePlan(entry=4, intr=2, exit=4),
    "splnet": CodePlan(intr=3),
    "netintr": CodePlan(intr=11),
    "do_sir": CodePlan(intr=6),
    "interrupt": CodePlan(intr=6),
    "schednetisr": CodePlan(intr=3),
    "logwakeup": CodePlan(intr=5),
    # Process control (budget 69)
    "setrunqueue": CodePlan(intr=5),
    "mi_switch": CodePlan(entry=10, exit=14),
    "cpu_switch": CodePlan(entry=10, exit=13),
    "tsleep": CodePlan(entry=12, exit=18),
    "wakeup": CodePlan(intr=12),
    "selwakeup": CodePlan(intr=4),
    "idle": CodePlan(intr=2),
    "remrq": CodePlan(exit=1),
    # Device / Ethernet (budget 140)
    "leintr": CodePlan(intr=34),
    "lestart": CodePlan(exit=18),
    "lewritereg": CodePlan(exit=4),
    "asic_intr": CodePlan(intr=6),
    "tc_3000_500_iointr": CodePlan(intr=10),
    "copyfrombuf_gap2": CodePlan(intr=6),
    "copytobuf_gap2": CodePlan(exit=5),
    "copyfrombuf_gap16": CodePlan(intr=3),
    "copytobuf_gap16": CodePlan(exit=3),
    "zerobuf_gap16": CodePlan(intr=3),
    "ether_input": CodePlan(intr=22),
    "ether_output": CodePlan(exit=20),
    "arpresolve": CodePlan(exit=6),
    # IP (budget 87)
    "ipintr": CodePlan(intr=45),
    "in_broadcast": CodePlan(intr=6),
    "ip_output": CodePlan(exit=36),
    # TCP (budget 99)
    "tcp_input": CodePlan(intr=60),
    "tcp_output": CodePlan(exit=30),
    "tcp_usrreq": CodePlan(exit=9),
    # Socket low (budget 173)
    "soreceive": CodePlan(entry=20, exit=150),
    "sbappend": CodePlan(intr=5),
    "sbcompress": CodePlan(intr=8),
    "sowakeup": CodePlan(intr=6),
    "sbwait": CodePlan(entry=4),
    # Socket high (budget 19)
    "read": CodePlan(entry=9, exit=9),
    "soo_read": CodePlan(entry=3, exit=3),
    "seltrue": CodePlan(exit=2),
    "getsock": CodePlan(entry=5, exit=5),
    # Buffer management (budget 171)
    "malloc": CodePlan(intr=20, exit=40),
    "free": CodePlan(intr=5, exit=22),
    "m_adj": CodePlan(exit=8),
    "m_get": CodePlan(intr=22),
    "m_free": CodePlan(exit=16),
    "m_copym": CodePlan(exit=28),
    "m_pullup": CodePlan(intr=13),
    "sbreserve": CodePlan(intr=8),
    "mb_alloc_cluster": CodePlan(intr=14),
}

#: Extra instruction references from data loops per (phase, function):
#: the checksum sweep, the driver copy, ``bcopy``, ``uiomove``...  These
#: add *references* without adding working-set lines, reproducing the
#: ref-heavy device-interrupt column of Figure 1.
LOOP_REFS: dict[str, dict[str, int]] = {
    PHASE_ENTRY: {},
    PHASE_INTR: {
        "in_cksum": 14000,
        "bcopy": 9000,
        "copyfrombuf_gap2": 12000,
        "zerobuf_gap16": 1500,
        "m_get": 1200,
        "tcp_input": 2200,
        "ether_input": 600,
    },
    PHASE_EXIT: {
        "uiomove": 1800,
        "copyout": 1400,
        "bcopy": 2000,
        "copytobuf_gap2": 1200,
        "in_cksum": 0,
        "lestart": 500,
        "ip_output": 400,
    },
}

#: Calls structure per phase: (function, nesting-depth) in execution
#: order.  Depth changes produce enter/leave events so the call graph
#: of the trace is meaningful.
PHASE_SCRIPTS: dict[str, list[tuple[str, int]]] = {
    PHASE_ENTRY: [
        ("XentSys", 0),
        ("syscall", 1),
        ("read", 2),
        ("getsock", 3),
        ("soo_read", 3),
        ("soreceive", 4),
        ("sbwait", 5),
        ("tsleep", 6),
        ("spl0", 7),
        ("splx", 7),
        ("mi_switch", 7),
        ("cpu_switch", 8),
    ],
    PHASE_INTR: [
        ("XentInt", 0),
        ("interrupt", 1),
        ("tc_3000_500_iointr", 2),
        ("asic_intr", 3),
        ("leintr", 3),
        ("splnet", 4),
        ("m_get", 4),
        ("malloc", 5),
        ("mb_alloc_cluster", 5),
        ("copyfrombuf_gap2", 4),
        ("copyfrombuf_gap16", 4),
        ("zerobuf_gap16", 4),
        ("ether_input", 4),
        ("schednetisr", 5),
        ("logwakeup", 5),
        ("rei", 1),
        ("pal_swpipl", 1),
        ("netintr", 0),
        ("do_sir", 1),
        ("ipintr", 1),
        ("in_broadcast", 2),
        ("m_pullup", 2),
        ("tcp_input", 1),
        ("trap", 2),
        ("in_cksum", 2),
        ("ntohl", 2),
        ("ntohs", 2),
        ("microtime", 2),
        ("sbreserve", 2),
        ("sbappend", 2),
        ("sbcompress", 3),
        ("bcopy", 4),
        ("bzero", 4),
        ("free", 3),
        ("sowakeup", 2),
        ("wakeup", 3),
        ("setrunqueue", 4),
        ("selwakeup", 3),
        ("spl0", 1),
        ("splx", 1),
        ("idle", 0),
    ],
    PHASE_EXIT: [
        ("cpu_switch", 0),
        ("mi_switch", 1),
        ("remrq", 2),
        ("tsleep", 1),
        ("soreceive", 1),
        ("imin_imax", 2),
        ("m_copym", 2),
        ("uiomove", 2),
        ("copyout", 3),
        ("m_adj", 2),
        ("m_free", 2),
        ("free", 3),
        ("seltrue", 2),
        ("tcp_usrreq", 1),
        ("tcp_output", 2),
        ("microtime", 3),
        ("malloc", 3),
        ("m_copym", 3),
        ("bcopy", 3),
        ("ntohl", 3),
        ("ntohs", 3),
        ("ip_output", 3),
        ("in_cksum", 4),
        ("ether_output", 4),
        ("arpresolve", 5),
        ("lestart", 5),
        ("copytobuf_gap2", 6),
        ("copytobuf_gap16", 6),
        ("lewritereg", 6),
        ("ovbcopy", 5),
        ("copyin", 2),
        ("soo_read", 1),
        ("read", 1),
        ("getsock", 1),
        ("syscall", 0),
        ("XentSys", 0),
        ("rei", 0),
        ("pal_swpipl", 0),
        ("spl0", 0),
        ("splx", 0),
    ],
}

#: Aux regions (excluded from Table 1, per its caption, but present in
#: the Figure 1 per-phase totals): kernel stacks, the message buffer,
#: and the device DMA ring.  Values are (read_lines, read_refs,
#: write_lines, write_refs) per phase, tuned against Figure 1.
AUX_PLAN: dict[str, tuple[int, int, int, int]] = {
    PHASE_ENTRY: (13, 25, 14, 45),
    PHASE_INTR: (345, 5400, 126, 1320),
    PHASE_EXIT: (45, 1280, 115, 870),
}

#: Message-buffer activity per phase: (read_lines, read_refs,
#: write_lines, write_refs).  The 552-byte message spans 18 lines; it is
#: written by the driver copy and read by checksum + copy in the
#: interrupt, then read again by the copy to user space at exit.
MESSAGE_PLAN: dict[str, tuple[int, int, int, int]] = {
    PHASE_ENTRY: (0, 0, 0, 0),
    PHASE_INTR: (18, 210, 18, 140),
    PHASE_EXIT: (18, 90, 0, 0),
}


@dataclass
class _PlacedFunction:
    spec: FunctionSpec
    base: int
    #: Absolute word addresses of the full touch map (budget lines).
    words: np.ndarray
    #: Word count covering the first k lines, for k = 0..budget.
    prefix_counts: list[int] = field(default_factory=list)

    def words_for_lines(self, lines: int) -> np.ndarray:
        """The touch-map prefix covering ``lines`` distinct lines."""
        if lines <= 0:
            return self.words[:0]
        return self.words[: self.prefix_counts[min(lines, len(self.prefix_counts) - 1)]]


@dataclass
class _DataRegion:
    layer: str
    mutable: bool
    base: int
    words: np.ndarray  # absolute word addresses (full budget)
    prefix_counts: list[int] = field(default_factory=list)

    def words_for_lines(self, lines: int) -> np.ndarray:
        if lines <= 0:
            return self.words[:0]
        return self.words[: self.prefix_counts[min(lines, len(self.prefix_counts) - 1)]]


def _prefix_counts(words: np.ndarray) -> list[int]:
    """prefix_counts[k] = number of words covering the first k lines."""
    counts = [0]
    seen: set[int] = set()
    for index, word in enumerate(words):
        line = int(word) // WORDS_PER_LINE
        if line not in seen:
            seen.add(line)
            counts.append(index + 1)
        else:
            counts[-1] = index + 1
    # Ensure counts[k] includes every word belonging to the first k lines
    # (words are sorted, but a line's words may interleave with the next
    # line's; with sorted words they cannot, so the above is exact).
    return counts


class ReceivePathModel:
    """Builds and analyzes the receive-&-acknowledge trace."""

    #: Segment bases: code at 0, layer data above, aux regions above that.
    CODE_BASE = 0x0
    DATA_BASE = 0x100000
    AUX_BASE = 0x200000

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)
        self._functions: dict[str, _PlacedFunction] = {}
        self._regions: dict[tuple[str, bool], _DataRegion] = {}
        self._place_functions()
        self._place_data_regions()
        self._place_aux_regions()
        self._validate_plan()

    # ------------------------------------------------------------------
    # Construction

    def _place_functions(self) -> None:
        cursor = self.CODE_BASE
        for spec in CATALOG:
            plan = CODE_PLAN.get(spec.name)
            budget = plan.budget if plan else 0
            words_rel = synthesize_code_touch_words(spec.size, budget, self.rng)
            words = words_rel + cursor // WORD
            placed = _PlacedFunction(spec=spec, base=cursor, words=words)
            placed.prefix_counts = _prefix_counts(words)
            self._functions[spec.name] = placed
            cursor += -(-spec.size // LINE) * LINE  # line-align next fn

    def _place_data_regions(self) -> None:
        cursor = self.DATA_BASE
        for layer in ALL_LAYERS:
            targets = PAPER_TABLE1[layer]
            for mutable, target_bytes in ((False, targets.readonly),
                                          (True, targets.mutable)):
                target_lines = target_bytes // LINE
                size = max(2 * target_bytes, LINE)
                # Mutable structures (PCB fields, queue heads) cluster
                # less within a line than read-only tables do; the pair
                # probability is calibrated against Table 3's rows.
                pair_prob = 0.15 if mutable else 0.35
                words_rel = synthesize_data_touch_words(
                    size, target_lines, self.rng, pair_prob=pair_prob
                )
                region = _DataRegion(
                    layer=layer,
                    mutable=mutable,
                    base=cursor,
                    words=words_rel + cursor // WORD,
                )
                region.prefix_counts = _prefix_counts(region.words)
                self._regions[(layer, mutable)] = region
                cursor += size

    def _place_aux_regions(self) -> None:
        # Stack: 16 KB; message buffer: 1 KB; DMA ring: 4 KB.
        self.stack_base = self.AUX_BASE
        self.stack_size = 16 * 1024
        self.message_base = self.AUX_BASE + 0x10000
        self.message_size = 1024
        self.dma_base = self.AUX_BASE + 0x20000
        self.dma_size = 4096

    def _validate_plan(self) -> None:
        for name in CODE_PLAN:
            if name not in self._functions:
                raise ConfigurationError(f"plan references unknown function {name!r}")
        for layer in ALL_LAYERS:
            budget = sum(
                CODE_PLAN[spec.name].budget
                for spec in CATALOG
                if spec.layer == layer and spec.name in CODE_PLAN
            )
            target = PAPER_TABLE1[layer].code // LINE
            if budget != target:
                raise ConfigurationError(
                    f"layer {layer!r} code plan sums to {budget} lines, "
                    f"Table 1 requires {target}"
                )

    # ------------------------------------------------------------------
    # Trace generation

    def build_trace(self) -> TraceBuffer:
        """Generate the full three-phase receive-&-acknowledge trace.

        With a :mod:`repro.obs` recorder installed, each phase is a
        span on the ``trace-gen`` track whose clock is the reference
        index (trace generation has no cycle clock of its own; the
        miss-attribution replay supplies modelled cycles later).
        """
        recorder = active_recorder()
        trace = TraceBuffer()
        # Cumulative fraction of each (layer, mutable) data budget
        # emitted so far; by the last phase every layer reaches 1.0, so
        # the union of phases covers the full Table-1 data budget.
        data_cum: dict[str, float] = {}
        for phase in PHASES:
            trace.mark_phase(phase)
            handle = (
                recorder.begin("trace-gen", phase, float(len(trace.refs)))
                if recorder is not None
                else None
            )
            self._emit_phase(trace, phase, data_cum)
            if recorder is not None and handle is not None:
                handle.args["refs"] = len(trace.refs) - int(handle.start)
                recorder.end(handle, float(len(trace.refs)))
                recorder.count("trace.refs", float(len(trace.refs)) - handle.start)
        return trace

    def _emit_phase(
        self, trace: TraceBuffer, phase: str, data_cum: dict[str, float]
    ) -> None:
        # zlib.crc32, not hash(): str hashes are salted per interpreter
        # (PYTHONHASHSEED), which would make the trace differ between
        # harness worker processes and break result caching.
        rng = np.random.default_rng(zlib.crc32(phase.encode()))
        depth_stack: list[str] = []
        script = PHASE_SCRIPTS[phase]
        layer_of = fn_to_layer_map()
        # Which layers already emitted data in this phase (emit once per
        # phase, at the first function of that layer).
        data_done: set[str] = set()
        for fn_name, depth in script:
            while len(depth_stack) > depth:
                trace.leave()
                depth_stack.pop()
            trace.enter(fn_name)
            depth_stack.append(fn_name)
            self._emit_function_code(trace, phase, fn_name, rng)
            layer = layer_of.get(fn_name)
            if layer and layer not in data_done:
                data_done.add(layer)
                self._emit_layer_data(trace, phase, layer, fn_name, rng, data_cum)
        while depth_stack:
            trace.leave()
            depth_stack.pop()
        self._emit_aux(trace, phase, rng)

    def _emit_function_code(
        self,
        trace: TraceBuffer,
        phase: str,
        fn_name: str,
        rng: np.random.Generator,
    ) -> None:
        placed = self._functions[fn_name]
        plan = CODE_PLAN.get(fn_name)
        if plan is None:
            return
        words = placed.words_for_lines(plan.lines_in(phase))
        for word in words:
            trace.append(MemRef(RefKind.CODE, int(word) * WORD, WORD, fn_name))
        loop_extra = LOOP_REFS[phase].get(fn_name, 0)
        if loop_extra and words.size:
            # Loop iterations revisit a small window of the function.
            window = words[: min(16, words.size)]
            picks = rng.integers(0, window.size, size=loop_extra)
            for pick in picks:
                trace.append(
                    MemRef(RefKind.CODE, int(window[pick]) * WORD, WORD, fn_name)
                )

    def _phase_fraction(self, layer: str, phase: str) -> float:
        """Layer's code presence in a phase, as a fraction of its budget."""
        phase_lines = 0
        budget_lines = 0
        for spec in CATALOG:
            if spec.layer != layer or spec.name not in CODE_PLAN:
                continue
            plan = CODE_PLAN[spec.name]
            phase_lines += plan.lines_in(phase)
            budget_lines += plan.budget
        if budget_lines == 0:
            return 0.0
        return phase_lines / budget_lines

    def _emit_layer_data(
        self,
        trace: TraceBuffer,
        phase: str,
        layer: str,
        fn_name: str,
        rng: np.random.Generator,
        data_cum: dict[str, float],
    ) -> None:
        fraction = self._phase_fraction(layer, phase)
        cumulative = min(1.0, data_cum.get(layer, 0.0) + fraction)
        if phase == PHASES[-1]:
            # The union over the whole trace must cover the full budget.
            cumulative = 1.0
        data_cum[layer] = cumulative
        for mutable in (False, True):
            region = self._regions[(layer, mutable)]
            total_lines = len(region.prefix_counts) - 1
            lines = round(total_lines * cumulative)
            words = region.words_for_lines(lines)
            if words.size == 0:
                continue
            for word in words:
                trace.append(MemRef(RefKind.READ, int(word) * WORD, WORD, fn_name))
            if mutable:
                # Every touched word of a mutable region is written
                # back (these are the fields the path updates), so the
                # mutable classification survives reanalysis at any
                # line size — which is what Table 3's mutable column
                # measures.
                for word in words:
                    trace.append(
                        MemRef(RefKind.WRITE, int(word) * WORD, WORD, fn_name)
                    )

    def _emit_aux(self, trace: TraceBuffer, phase: str, rng: np.random.Generator) -> None:
        read_lines, read_refs, write_lines, write_refs = AUX_PLAN[phase]
        self._emit_region_refs(
            trace, self.stack_base, self.stack_size, read_lines, read_refs,
            RefKind.READ, rng, fn="stack",
        )
        self._emit_region_refs(
            trace, self.stack_base, self.stack_size, write_lines, write_refs,
            RefKind.WRITE, rng, fn="stack",
        )
        m_read_lines, m_read_refs, m_write_lines, m_write_refs = MESSAGE_PLAN[phase]
        self._emit_region_refs(
            trace, self.message_base, self.message_size, m_read_lines,
            m_read_refs, RefKind.READ, rng, fn="message",
        )
        self._emit_region_refs(
            trace, self.message_base, self.message_size, m_write_lines,
            m_write_refs, RefKind.WRITE, rng, fn="message",
        )
        if phase == PHASE_INTR:
            # The driver walks the DMA descriptor ring.
            self._emit_region_refs(
                trace, self.dma_base, self.dma_size, 48, 200, RefKind.READ,
                rng, fn="leintr",
            )

    def _emit_region_refs(
        self,
        trace: TraceBuffer,
        base: int,
        size: int,
        lines: int,
        refs: int,
        kind: RefKind,
        rng: np.random.Generator,
        fn: str,
    ) -> None:
        if lines <= 0 or refs <= 0:
            return
        capacity = size // LINE
        lines = min(lines, capacity)
        chosen = rng.permutation(capacity)[:lines]
        addrs = base + chosen * LINE + (rng.integers(0, WORDS_PER_LINE, lines) * WORD)
        # First touch each line once, then distribute the remaining refs.
        for addr in addrs:
            trace.append(MemRef(kind, int(addr), WORD, fn))
        extra = refs - lines
        if extra > 0:
            picks = rng.integers(0, lines, size=extra)
            for pick in picks:
                trace.append(MemRef(kind, int(addrs[pick]), WORD, fn))

    # ------------------------------------------------------------------
    # Analysis helpers

    def classifier(self) -> LayerClassifier:
        return LayerClassifier(fn_to_layer_map())

    def is_aux_addr(self, addr: int) -> bool:
        """True for stack / message / DMA addresses (excluded by Table 1)."""
        return addr >= self.AUX_BASE

    def table1_refs(self, trace: TraceBuffer) -> list[MemRef]:
        """References Table 1 counts: everything except aux regions."""
        return [
            ref
            for ref in trace.refs
            if ref.is_code() or not self.is_aux_addr(ref.addr)
        ]

    def analyze(self, trace: TraceBuffer | None = None) -> WorkingSetAnalyzer:
        """Run the working-set analysis Table 1/3 are derived from."""
        trace = trace or self.build_trace()
        analyzer = WorkingSetAnalyzer(self.classifier())
        analyzer.consume(self.table1_refs(trace))
        return analyzer
