"""The NetBSD/Alpha receive-path model (Section 2 substitution).

Rebuilds the paper's measurement half as a calibrated model: the
Figure-1 function catalog, the Table-1 layer taxonomy, synthesized
sub-line touch maps, and the three-phase receive-&-acknowledge trace
script.  See DESIGN.md for what is published data versus modeled.
"""

from .cord import (
    CordResult,
    DilutionReport,
    compact_trace,
    measure_dilution,
    run_cord_experiment,
)
from .functions import (
    ALL_LAYERS,
    CATALOG,
    FunctionSpec,
    catalog_by_name,
    fn_to_layer_map,
    functions_of_layer,
    layer_catalog_bytes,
)
from .layers import (
    CLARK_BYTES_ON_ALPHA,
    CLARK_INSTRUCTIONS,
    LayerWorkingSet,
    PAPER_PHASES,
    PAPER_TABLE1,
    PAPER_TABLE1_TOTAL,
    PAPER_TABLE3,
    PhaseTotals,
    TRACE_MESSAGE_BYTES,
    Table3Row,
    table1_row_sum,
)
from .receive_path import (
    CODE_PLAN,
    PHASE_ENTRY,
    PHASE_EXIT,
    PHASE_INTR,
    PHASES,
    CodePlan,
    ReceivePathModel,
)
from .touchmap import (
    coverage_stats,
    synthesize_code_touch_words,
    synthesize_data_touch_words,
)

__all__ = [
    "ALL_LAYERS",
    "CordResult",
    "DilutionReport",
    "compact_trace",
    "measure_dilution",
    "run_cord_experiment",
    "CATALOG",
    "CLARK_BYTES_ON_ALPHA",
    "CLARK_INSTRUCTIONS",
    "CODE_PLAN",
    "CodePlan",
    "FunctionSpec",
    "LayerWorkingSet",
    "PAPER_PHASES",
    "PAPER_TABLE1",
    "PAPER_TABLE1_TOTAL",
    "PAPER_TABLE3",
    "PHASES",
    "PHASE_ENTRY",
    "PHASE_EXIT",
    "PHASE_INTR",
    "PhaseTotals",
    "ReceivePathModel",
    "TRACE_MESSAGE_BYTES",
    "Table3Row",
    "catalog_by_name",
    "coverage_stats",
    "fn_to_layer_map",
    "functions_of_layer",
    "layer_catalog_bytes",
    "synthesize_code_touch_words",
    "synthesize_data_touch_words",
    "table1_row_sum",
]
