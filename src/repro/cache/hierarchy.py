"""Cache hierarchies: split instruction/data primaries, miss penalties.

The paper's machine model charges a fixed stall per primary-cache read
miss (20 cycles in Section 4; 10 cycles on the DEC 3000/400 of Section 2)
and treats the secondary cache / memory as flat beyond that.  The
hierarchy object pairs the I and D caches with those penalties and
converts miss counts into stall cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import kb
from .cache import Cache, DirectMappedCache


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one primary cache."""

    size: int = kb(8)
    line_size: int = 32

    def build(self) -> DirectMappedCache:
        """Construct a direct-mapped cache with this geometry."""
        return DirectMappedCache(self.size, self.line_size)

    @property
    def num_lines(self) -> int:
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        """Set count (equal to the line count: direct-mapped)."""
        return self.num_lines

    def set_of_addr(self, addr: int) -> int:
        """Cache set index a byte address maps to."""
        return (addr // self.line_size) % self.num_lines

    def describe(self) -> dict[str, int]:
        """Static description for offline analysis and reports."""
        return {
            "size": self.size,
            "line_size": self.line_size,
            "num_sets": self.num_sets,
        }


@dataclass(frozen=True)
class MachineSpec:
    """The simulated machine of the paper's Section 4.

    100 MHz clock, 8 KB direct-mapped split I/D caches with 32-byte
    lines, and a 20-cycle stall per read miss.

    The flat ``miss_penalty`` matches the paper's model, where every
    primary miss hits in the secondary cache.  Setting ``l2`` adds an
    explicit unified second-level cache: a primary miss that hits L2
    stalls ``miss_penalty`` cycles, a miss in both levels stalls
    ``memory_penalty`` cycles ("ultimately the execution rate is
    bounded by the second level cache bandwidth, and possibly by the
    main memory bandwidth for very large protocol working sets").
    """

    clock_hz: float = 100e6
    icache: CacheGeometry = field(default_factory=CacheGeometry)
    dcache: CacheGeometry = field(default_factory=CacheGeometry)
    miss_penalty: int = 20
    l2: CacheGeometry | None = None
    memory_penalty: int = 100
    #: Fraction of instruction-miss stall hidden by sequential prefetch
    #: ("some processors can prefetch instructions from the second level
    #: cache to hide some of the cache miss cost", Section 4).
    iprefetch_efficiency: float = 0.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError(f"clock must be positive, got {self.clock_hz}")
        if self.miss_penalty < 0:
            raise ConfigurationError(
                f"miss penalty must be non-negative, got {self.miss_penalty}"
            )
        if self.memory_penalty < self.miss_penalty:
            raise ConfigurationError(
                "memory penalty cannot be below the L2-hit penalty"
            )
        if not 0.0 <= self.iprefetch_efficiency < 1.0:
            raise ConfigurationError(
                "prefetch efficiency must be in [0, 1)"
            )
        if self.l2 is not None:
            for primary in (self.icache, self.dcache):
                if self.l2.line_size != primary.line_size:
                    raise ConfigurationError(
                        "L2 line size must match the primary caches"
                    )
                if self.l2.size < primary.size:
                    raise ConfigurationError(
                        "L2 must be at least as large as each primary cache"
                    )

    def with_clock(self, clock_hz: float) -> "MachineSpec":
        """Return a copy running at a different clock rate (Figure 7)."""
        return MachineSpec(
            clock_hz,
            self.icache,
            self.dcache,
            self.miss_penalty,
            self.l2,
            self.memory_penalty,
            self.iprefetch_efficiency,
        )

    def with_miss_penalty(self, miss_penalty: int) -> "MachineSpec":
        """Return a copy with a different miss penalty (ablation A2)."""
        return MachineSpec(self.clock_hz, self.icache, self.dcache, miss_penalty)


#: The DEC 3000/400 of Section 2: 8 KB primaries, 32-byte lines, and a
#: 10-cycle primary-miss penalty ("wastes 20 instruction slots (10
#: cycles)").
DEC3000_400 = MachineSpec(clock_hz=133e6, miss_penalty=10)

#: Rosenblum's 1998 projection quoted in Section 1.2: larger caches but a
#: much larger (60-slot ~ 30-cycle) miss cost.
ROSENBLUM_1998 = MachineSpec(
    clock_hz=400e6,
    icache=CacheGeometry(size=kb(64)),
    dcache=CacheGeometry(size=kb(64)),
    miss_penalty=30,
)


class SplitCacheHierarchy:
    """Split primary I/D caches plus a miss-penalty cost model.

    This is the mutable runtime counterpart of :class:`MachineSpec`: it
    owns actual cache state and accumulates stall cycles.
    """

    def __init__(self, spec: MachineSpec | None = None) -> None:
        self.spec = spec or MachineSpec()
        self.icache: Cache = self.spec.icache.build()
        self.dcache: Cache = self.spec.dcache.build()
        self.l2: DirectMappedCache | None = (
            self.spec.l2.build() if self.spec.l2 is not None else None
        )

    def stall_for_missed(self, missed: "np.ndarray", instruction: bool = False) -> int:
        """Stall cycles for primary-miss lines, probing L2 when present.

        With the paper's flat model (no L2 configured) every primary
        miss costs ``miss_penalty``.  With an L2, lines that hit there
        cost ``miss_penalty`` and true memory misses ``memory_penalty``.
        Instruction fetches get ``iprefetch_efficiency`` of their stall
        hidden (sequential prefetch from the next level).
        """
        count = int(missed.size)
        if count == 0:
            return 0
        if self.l2 is None:
            stall = count * self.spec.miss_penalty
        else:
            l2_misses = self._probe_l2(missed)
            l2_hits = count - l2_misses
            stall = (
                l2_hits * self.spec.miss_penalty
                + l2_misses * self.spec.memory_penalty
            )
        if instruction and self.spec.iprefetch_efficiency:
            stall = int(round(stall * (1.0 - self.spec.iprefetch_efficiency)))
        return stall

    def _probe_l2(self, missed: "np.ndarray") -> int:
        assert self.l2 is not None
        span = int(missed.max() - missed.min()) + 1 if missed.size else 0
        if span <= self.l2.num_lines:
            return self.l2.access_line_array(missed)
        return sum(self.l2.access_line(int(line)) for line in missed)

    def fetch_code(self, addr: int, size: int) -> int:
        """Fetch ``size`` bytes of code; return stall cycles incurred."""
        missed = self.icache.access_span_report(addr, size)  # type: ignore[attr-defined]
        return self.stall_for_missed(missed)

    def read_data(self, addr: int, size: int) -> int:
        """Read ``size`` bytes of data; return stall cycles incurred."""
        missed = self.dcache.access_span_report(addr, size)  # type: ignore[attr-defined]
        return self.stall_for_missed(missed)

    def write_data(self, addr: int, size: int) -> int:
        """Write ``size`` bytes of data; return stall cycles incurred.

        The paper's model stalls only on *read* misses; writes allocate
        in the caches but cost no stall (write buffer assumed).
        """
        missed = self.dcache.access_span_report(addr, size)  # type: ignore[attr-defined]
        if self.l2 is not None and missed.size:
            self._probe_l2(missed)
        return 0

    def flush(self) -> None:
        """Cold-start all caches (statistics are preserved)."""
        self.icache.flush()
        self.dcache.flush()
        if self.l2 is not None:
            self.l2.flush()

    def reset_stats(self) -> None:
        self.icache.stats.reset()
        self.dcache.stats.reset()
        if self.l2 is not None:
            self.l2.stats.reset()

    @property
    def total_misses(self) -> int:
        return self.icache.stats.misses + self.dcache.stats.misses
