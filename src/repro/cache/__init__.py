"""Cache simulation and working-set analysis.

Public surface:

* :class:`DirectMappedCache`, :class:`SetAssociativeCache` — cache models;
* :class:`SplitCacheHierarchy`, :class:`MachineSpec`, :class:`CacheGeometry`
  — the paper's machine model (8 KB split I/D, 20-cycle miss penalty);
* :class:`WorkingSetAnalyzer` and report types — Table 1 / Table 3 analysis;
* :mod:`repro.cache.line` helpers for address/line arithmetic.
"""

from .cache import (
    REPLACEMENT_POLICIES,
    Cache,
    DirectMappedCache,
    SetAssociativeCache,
)
from .chunked import SegmentedAccessPlan, UnsupportedPlanError, unit_plan
from .hierarchy import (
    DEC3000_400,
    ROSENBLUM_1998,
    CacheGeometry,
    MachineSpec,
    SplitCacheHierarchy,
)
from .line import line_base, line_count, line_of, lines_touched
from .stats import CacheStats
from .workingset import (
    Category,
    CategoryCount,
    LineSizeDelta,
    LineSizeRow,
    LineSizeTable,
    WorkingSetAnalyzer,
    WorkingSetReport,
)

__all__ = [
    "Cache",
    "CacheGeometry",
    "CacheStats",
    "Category",
    "CategoryCount",
    "DEC3000_400",
    "DirectMappedCache",
    "LineSizeDelta",
    "LineSizeRow",
    "LineSizeTable",
    "MachineSpec",
    "REPLACEMENT_POLICIES",
    "ROSENBLUM_1998",
    "SegmentedAccessPlan",
    "SetAssociativeCache",
    "SplitCacheHierarchy",
    "UnsupportedPlanError",
    "unit_plan",
    "WorkingSetAnalyzer",
    "WorkingSetReport",
    "line_base",
    "line_count",
    "line_of",
    "lines_touched",
]
