"""Working-set analysis of memory traces (Tables 1 and 3).

Definitions follow Section 2 of the paper:

* The *working set* is the set of distinct cache lines referenced during
  a trace, split into **code**, **read-only data** (touched but never
  written during the trace) and **mutable data** (written at least once).
* The unit of memory is a cache line: "a reference to any element in the
  cache line makes the whole cache line part of the working set".
* Code is classified into layers by function; data by the layer of the
  function executing at *first touch*.

The analyzer records references at a fine *atom* granularity (4 bytes,
one Alpha instruction) so the same trace can be re-aggregated at any
line size — that re-aggregation is exactly the paper's Table 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from ..trace.classify import FirstTouchAttributor, LayerClassifier
from ..trace.record import MemRef
from .line import check_power_of_two


class Category(enum.Enum):
    """Working-set categories used by Table 1."""

    CODE = "code"
    READONLY = "read-only data"
    MUTABLE = "mutable data"


@dataclass(frozen=True)
class CategoryCount:
    """Working-set size of one category: line-aggregated bytes and lines."""

    bytes: int
    lines: int

    def __add__(self, other: "CategoryCount") -> "CategoryCount":
        return CategoryCount(self.bytes + other.bytes, self.lines + other.lines)


ZERO_COUNT = CategoryCount(0, 0)


@dataclass
class WorkingSetReport:
    """Per-layer working-set breakdown at one line size (Table 1 shape)."""

    line_size: int
    per_layer: dict[str, dict[Category, CategoryCount]]

    def layer(self, name: str, category: Category) -> CategoryCount:
        return self.per_layer.get(name, {}).get(category, ZERO_COUNT)

    def total(self, category: Category) -> CategoryCount:
        result = ZERO_COUNT
        for counts in self.per_layer.values():
            result = result + counts.get(category, ZERO_COUNT)
        return result

    def grand_total_bytes(self) -> int:
        return sum(self.total(category).bytes for category in Category)


class WorkingSetAnalyzer:
    """Accumulates references and produces working-set reports.

    Parameters
    ----------
    classifier:
        Function→layer map used for Table-1-style per-layer breakdowns.
        When omitted, everything lands in the ``unclassified`` layer.
    atom_size:
        Granularity at which touches are recorded; must divide every
        line size later queried.  4 bytes (one instruction) by default.
    classification_chunk:
        Granularity of first-touch data attribution (32 bytes, matching
        the paper's classification unit).
    """

    def __init__(
        self,
        classifier: LayerClassifier | None = None,
        atom_size: int = 4,
        classification_chunk: int = 32,
    ) -> None:
        check_power_of_two(atom_size, "atom size")
        self.atom_size = atom_size
        self.classifier = classifier or LayerClassifier()
        self._attributor = FirstTouchAttributor(self.classifier, classification_chunk)
        # atom -> owning layer, insertion-ordered by first touch
        self._code_atoms: dict[int, str] = {}
        self._data_atoms: set[int] = set()
        self._written_atoms: set[int] = set()

    def consume(self, refs: Iterable[MemRef]) -> None:
        """Feed references into the analysis."""
        atom = self.atom_size
        for ref in refs:
            first = ref.addr // atom
            last = (ref.end - 1) // atom
            if ref.is_code():
                layer = self.classifier.layer_of(ref)
                for a in range(first, last + 1):
                    self._code_atoms.setdefault(a, layer)
            else:
                self._attributor.observe(ref)
                for a in range(first, last + 1):
                    self._data_atoms.add(a)
                    if ref.is_write():
                        self._written_atoms.add(a)

    def _check_line_size(self, line_size: int) -> int:
        check_power_of_two(line_size, "line size")
        if line_size < self.atom_size:
            raise ConfigurationError(
                f"line size {line_size} below atom size {self.atom_size}"
            )
        return line_size // self.atom_size

    def report(self, line_size: int = 32) -> WorkingSetReport:
        """Produce a per-layer working-set breakdown at ``line_size``."""
        atoms_per_line = self._check_line_size(line_size)
        per_layer: dict[str, dict[Category, CategoryCount]] = {}

        def bump(layer: str, category: Category, lines: int) -> None:
            counts = per_layer.setdefault(layer, {})
            old = counts.get(category, ZERO_COUNT)
            counts[category] = CategoryCount(
                old.bytes + lines * line_size, old.lines + lines
            )

        # Code lines: owner = layer of the lowest-addressed touched atom.
        code_lines: dict[int, str] = {}
        for atom in sorted(self._code_atoms):
            code_lines.setdefault(atom // atoms_per_line, self._code_atoms[atom])
        layer_line_counts: dict[str, int] = {}
        for layer in code_lines.values():
            layer_line_counts[layer] = layer_line_counts.get(layer, 0) + 1
        for layer, count in layer_line_counts.items():
            bump(layer, Category.CODE, count)

        # Data lines: mutable if any atom in the line was written.
        data_lines: dict[int, bool] = {}
        for atom in self._data_atoms:
            line = atom // atoms_per_line
            data_lines[line] = data_lines.get(line, False) or (
                atom in self._written_atoms
            )
        ro_by_layer: dict[str, int] = {}
        mut_by_layer: dict[str, int] = {}
        for line, written in data_lines.items():
            owner = self._attributor.owner_of_addr(line * line_size)
            target = mut_by_layer if written else ro_by_layer
            target[owner] = target.get(owner, 0) + 1
        for layer, count in ro_by_layer.items():
            bump(layer, Category.READONLY, count)
        for layer, count in mut_by_layer.items():
            bump(layer, Category.MUTABLE, count)
        return WorkingSetReport(line_size=line_size, per_layer=per_layer)

    def totals_at(self, line_size: int) -> dict[Category, CategoryCount]:
        """Total working-set sizes per category at ``line_size``."""
        report = self.report(line_size)
        return {category: report.total(category) for category in Category}

    def line_size_table(
        self,
        line_sizes: Sequence[int] = (4, 8, 16, 32, 64),
        baseline: int = 32,
    ) -> "LineSizeTable":
        """Reproduce Table 3: working-set deltas versus a baseline line size."""
        base = self.totals_at(baseline)
        rows = []
        for size in line_sizes:
            feasible = size >= 8  # Alpha word size: data lines below 8 B are N/A
            totals = self.totals_at(max(size, self.atom_size))
            deltas = {}
            for category in Category:
                if category is not Category.CODE and not feasible:
                    deltas[category] = None
                    continue
                base_count = base[category]
                count = totals[category]
                deltas[category] = LineSizeDelta(
                    bytes_pct=_pct_change(base_count.bytes, count.bytes),
                    lines_pct=_pct_change(base_count.lines, count.lines),
                )
            rows.append(LineSizeRow(line_size=size, deltas=deltas))
        return LineSizeTable(baseline=baseline, rows=rows)


def _pct_change(base: int, value: int) -> float:
    if base == 0:
        return 0.0
    return 100.0 * (value - base) / base


@dataclass(frozen=True)
class LineSizeDelta:
    """Percentage change of bytes and lines versus the baseline line size."""

    bytes_pct: float
    lines_pct: float

    def format(self) -> str:
        return f"{self.bytes_pct:+.0f}% {self.lines_pct:+.0f}%"


@dataclass(frozen=True)
class LineSizeRow:
    line_size: int
    deltas: dict[Category, "LineSizeDelta | None"]


@dataclass(frozen=True)
class LineSizeTable:
    """Table-3-shaped result: one row per line size."""

    baseline: int
    rows: list[LineSizeRow]

    def row(self, line_size: int) -> LineSizeRow:
        for row in self.rows:
            if row.line_size == line_size:
                return row
        raise ConfigurationError(f"no row for line size {line_size}")
