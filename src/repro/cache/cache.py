"""Cache models: direct-mapped and set-associative (LRU or FIFO).

The paper's synthetic environment (Section 4) uses 8 KB direct-mapped
primary instruction and data caches with 32-byte lines and a 20-cycle
read-miss stall.  :class:`DirectMappedCache` models exactly that, with a
vectorized fast path for the contiguous multi-line accesses that dominate
protocol processing (sweeping a layer's code, reading a message body).

:class:`SetAssociativeCache` generalizes to N-way replacement — true LRU
or FIFO, selected by ``policy`` — for the cache organization studies in
Section 5.3, the flow-lookup cache sweep (:mod:`repro.flows`, modeled on
Jain's DEC-TR-592 destination-address cache study), and tests; it is
scalar and exact but not used in the hot simulation loops.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigurationError
from .line import check_power_of_two, lines_touched
from .stats import CacheStats


class Cache(ABC):
    """Common interface for cache models.

    All accesses are counted in the attached :class:`CacheStats`; access
    methods return the number of *misses* they caused so callers can
    charge stall cycles without re-reading the counters.
    """

    def __init__(self, size: int, line_size: int) -> None:
        check_power_of_two(size, "cache size")
        check_power_of_two(line_size, "cache line size")
        if line_size > size:
            raise ConfigurationError(
                f"line size {line_size} exceeds cache size {size}"
            )
        self.size = size
        self.line_size = line_size
        self.num_lines = size // line_size
        self.stats = CacheStats()

    @abstractmethod
    def access_line(self, line: int) -> bool:
        """Access one line by line number; return True iff it missed."""

    @abstractmethod
    def flush(self) -> None:
        """Invalidate all lines (does not reset statistics)."""

    @abstractmethod
    def contains_line(self, line: int) -> bool:
        """Return True iff ``line`` is currently resident (no side effects)."""

    def access(self, addr: int, size: int = 1) -> int:
        """Access ``size`` bytes starting at byte address ``addr``.

        Returns the number of line misses incurred.
        """
        misses = 0
        for line in lines_touched(addr, size, self.line_size):
            if self.access_line(line):
                misses += 1
        return misses

    def access_span(self, addr: int, size: int) -> int:
        """Access a contiguous byte span; alias of :meth:`access`.

        Subclasses may override with a vectorized implementation.
        """
        return self.access(addr, size)

    def contains(self, addr: int) -> bool:
        """Return True iff the line holding byte ``addr`` is resident."""
        return self.contains_line(addr // self.line_size)


class DirectMappedCache(Cache):
    """A direct-mapped cache backed by a numpy tag array.

    Each line number maps to set ``line % num_lines``; the set holds one
    tag.  ``-1`` marks an invalid (empty) slot, so callers must use
    non-negative line numbers (i.e. non-negative addresses), which the
    memory layout code guarantees.
    """

    def __init__(self, size: int, line_size: int = 32) -> None:
        super().__init__(size, line_size)
        self._tags = np.full(self.num_lines, -1, dtype=np.int64)

    def access_line(self, line: int) -> bool:
        if line < 0:
            raise ConfigurationError(f"line number must be non-negative, got {line}")
        index = line % self.num_lines
        if self._tags[index] == line:
            self.stats.hits += 1
            return False
        if self._tags[index] != -1:
            self.stats.evictions += 1
        self._tags[index] = line
        self.stats.misses += 1
        return True

    def contains_line(self, line: int) -> bool:
        if line < 0:
            # Same guard as access_line: a negative line would otherwise
            # compare equal to the -1 invalid-slot sentinel and report
            # an empty set as resident.
            raise ConfigurationError(f"line number must be non-negative, got {line}")
        return bool(self._tags[line % self.num_lines] == line)

    def flush(self) -> None:
        self._tags.fill(-1)

    def access_span(self, addr: int, size: int) -> int:
        """Vectorized access to a contiguous byte span.

        Contiguous lines map to distinct sets as long as the span covers
        at most ``num_lines`` lines, so a single vector compare-and-fill
        is exactly equivalent to the sequential scalar loop.  Longer
        spans (which self-evict) fall back to the scalar path.
        """
        if size < 0:
            raise ConfigurationError(f"access size must be non-negative, got {size}")
        if size == 0:
            return 0
        if addr < 0:
            raise ConfigurationError(f"address must be non-negative, got {addr}")
        first = addr // self.line_size
        last = (addr + size - 1) // self.line_size
        count = last - first + 1
        if count > self.num_lines:
            return self.access(addr, size)
        lines = np.arange(first, last + 1, dtype=np.int64)
        indices = lines % self.num_lines
        resident = self._tags[indices]
        miss_mask = resident != lines
        misses = int(miss_mask.sum())
        if misses:
            evicted = miss_mask & (resident != -1)
            self.stats.evictions += int(evicted.sum())
            self._tags[indices[miss_mask]] = lines[miss_mask]
        self.stats.misses += misses
        self.stats.hits += count - misses
        return misses

    def access_line_array(self, lines: np.ndarray) -> int:
        """Vectorized access to an array of *distinct* line numbers.

        The caller must guarantee the lines map to distinct sets (e.g.
        consecutive lines of a region smaller than the cache).  Used by
        the executor for strided but regular reference patterns.
        """
        return int(self.access_line_array_report(lines).size)

    def access_line_array_report(self, lines: np.ndarray) -> np.ndarray:
        """Like :meth:`access_line_array` but returns the *missed* lines.

        Multi-level hierarchies use the returned array to probe the
        next cache level.
        """
        if lines.size == 0:
            return lines
        indices = lines % self.num_lines
        resident = self._tags[indices]
        miss_mask = resident != lines
        misses = int(miss_mask.sum())
        if misses:
            evicted = miss_mask & (resident != -1)
            self.stats.evictions += int(evicted.sum())
            self._tags[indices[miss_mask]] = lines[miss_mask]
        self.stats.misses += misses
        self.stats.hits += int(lines.size) - misses
        return lines[miss_mask]

    def access_span_report(self, addr: int, size: int) -> np.ndarray:
        """Access a contiguous span; return the missed line numbers."""
        if size < 0:
            raise ConfigurationError(f"access size must be non-negative, got {size}")
        if size == 0:
            return np.empty(0, dtype=np.int64)
        if addr < 0:
            raise ConfigurationError(f"address must be non-negative, got {addr}")
        first = addr // self.line_size
        last = (addr + size - 1) // self.line_size
        if last - first + 1 <= self.num_lines:
            return self.access_line_array_report(
                np.arange(first, last + 1, dtype=np.int64)
            )
        missed = [line for line in range(first, last + 1) if self.access_line(line)]
        return np.asarray(missed, dtype=np.int64)

    def access_stream(
        self, lines: np.ndarray, chunk_size: int | None = None
    ) -> np.ndarray:
        """Vectorized *sequential* access to an arbitrary line stream.

        Exactly equivalent to calling :meth:`access_line` once per
        element (no distinct-sets requirement — repeats and conflicts
        are handled), but implemented as a chunked segmented-plan
        replay (:mod:`repro.cache.chunked`).  Returns the boolean miss
        mask in stream order.  Results are invariant under
        ``chunk_size`` (None = the whole stream as one chunk); chunking
        only bounds the transient memory of plan construction.
        """
        from .chunked import unit_plan

        lines = np.ascontiguousarray(lines, dtype=np.int64)
        if lines.size and int(lines.min()) < 0:
            raise ConfigurationError("line numbers must be non-negative")
        if chunk_size is not None and chunk_size <= 0:
            raise ConfigurationError(
                f"chunk size must be positive, got {chunk_size}"
            )
        step = int(lines.size) if chunk_size is None else chunk_size
        masks = []
        for start in range(0, int(lines.size), max(step, 1)):
            chunk = lines[start : start + step]
            _, mask = unit_plan(chunk, self.num_lines).apply(
                self._tags, self.stats, return_mask=True
            )
            masks.append(mask)
        if not masks:
            return np.zeros(0, dtype=bool)
        return np.concatenate(masks)

    @property
    def tag_array(self) -> np.ndarray:
        """The live tag array (one int64 tag per set; ``-1`` = empty).

        Exposed for the vectorized engine, which replays precompiled
        :class:`repro.cache.chunked.SegmentedAccessPlan` objects against
        it.  Mutating it bypasses statistics accounting — use the
        ``access_*`` methods unless you are implementing a kernel.
        """
        return self._tags

    def resident_lines(self) -> set[int]:
        """Return the set of line numbers currently resident (for tests)."""
        return {int(tag) for tag in self._tags if tag != -1}


#: Replacement policies :class:`SetAssociativeCache` implements.  LRU is
#: the Section-5.3 organization study default; FIFO is the cheaper
#: hardware alternative the flow-lookup sweep (:mod:`repro.flows`)
#: compares it against, after Jain's DEC-TR-592 lookup-cache study.
REPLACEMENT_POLICIES = ("lru", "fifo")


class SetAssociativeCache(Cache):
    """An N-way set-associative cache with LRU or FIFO replacement.

    ``policy="lru"`` (the default) is true LRU: a hit refreshes the
    line's recency, a miss evicts the least recently *used* line.
    ``policy="fifo"`` never reorders on hit, so a miss evicts the least
    recently *inserted* line regardless of hits since.  ``ways=1``
    behaves identically to :class:`DirectMappedCache` under either
    policy — with one line per set there is nothing to reorder —
    (verified by tests); ``ways == num_lines`` is fully associative.
    """

    def __init__(
        self,
        size: int,
        line_size: int = 32,
        ways: int = 2,
        policy: str = "lru",
    ) -> None:
        super().__init__(size, line_size)
        check_power_of_two(ways, "associativity")
        if ways > self.num_lines:
            raise ConfigurationError(
                f"{ways}-way associativity exceeds {self.num_lines} lines"
            )
        if policy not in REPLACEMENT_POLICIES:
            raise ConfigurationError(
                f"unknown replacement policy {policy!r}; expected one of "
                f"{REPLACEMENT_POLICIES}"
            )
        self.ways = ways
        self.policy = policy
        self.num_sets = self.num_lines // ways
        # Each set is a replacement-ordered list of tags: the eviction
        # victim first, the most recently used (LRU) or most recently
        # inserted (FIFO) tag last.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]

    def access_line(self, line: int) -> bool:
        if line < 0:
            raise ConfigurationError(f"line number must be non-negative, got {line}")
        lru = self._sets[line % self.num_sets]
        if line in lru:
            if self.policy == "lru":
                lru.remove(line)
                lru.append(line)
            self.stats.hits += 1
            return False
        if len(lru) >= self.ways:
            lru.pop(0)
            self.stats.evictions += 1
        lru.append(line)
        self.stats.misses += 1
        return True

    def contains_line(self, line: int) -> bool:
        if line < 0:
            # Parity with access_line (and with DirectMappedCache): the
            # membership probe must reject the same inputs the access
            # path rejects instead of silently answering False.
            raise ConfigurationError(f"line number must be non-negative, got {line}")
        return line in self._sets[line % self.num_sets]

    def flush(self) -> None:
        for lru in self._sets:
            lru.clear()

    def resident_lines(self) -> set[int]:
        """Return the set of line numbers currently resident (for tests)."""
        return {line for lru in self._sets for line in lru}
