"""Hit/miss accounting shared by all cache models."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Counters accumulated by a cache over its lifetime.

    Attributes
    ----------
    hits:
        Number of line accesses satisfied by the cache.
    misses:
        Number of line accesses that required a fill from the next level.
    evictions:
        Number of valid lines displaced by fills.  A fill into an invalid
        slot is not an eviction.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total number of line accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed; 0.0 when no accesses occurred."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> "CacheStats":
        """Return an independent copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.evictions)

    def delta_since(self, earlier: "CacheStats") -> "CacheStats":
        """Return counters accumulated since ``earlier`` was snapshotted."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
        )

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )
