"""Vectorized (chunked/segmented) direct-mapped cache kernels.

The scalar hot path simulates one *call* at a time:
:meth:`repro.cache.cache.DirectMappedCache.access_line_array_report`
gathers the resident tags for every position of the call, compares,
then scatters the new tags — parallel *within* a call, sequential
*across* calls.  This module precomputes everything about a whole
sequence of such calls (a *segmented plan*) so that replaying it against
live cache state costs a handful of numpy operations instead of a
Python-level loop.

The trick that makes a static template possible: when no single segment
contains two positions mapping to the same cache set (true for every
placed layer and message buffer — their line arrays are contiguous and
smaller than the cache), the tag left in set ``s`` after a segment is
simply the line of the *last* position with set ``s`` in that segment,
hit or miss.  Therefore, for any position whose set was already touched
by an *earlier* segment of the plan, the resident tag it observes is a
static, state-independent quantity; only positions touching a set for
the *first time* within the plan need a gather from the live tag array.

A plan whose segments all have length one reproduces element-sequential
semantics exactly, which is what :meth:`DirectMappedCache.access_stream`
uses — and why results are invariant under the chunk size used to slice
the stream.
"""

from __future__ import annotations

import numpy as np

from .stats import CacheStats


class UnsupportedPlanError(ValueError):
    """A segment contains two positions with the same set index.

    The static-template shortcut is unsound in that case (the second
    position's resident tag depends on the first's hit/miss outcome at
    *apply* time), so callers must fall back to the scalar path.
    """


class SegmentedAccessPlan:
    """A precompiled sequence of parallel-within-call cache accesses.

    Parameters
    ----------
    lines:
        All line numbers of the plan, segment by segment (int64).
    seg_offsets:
        Segment boundaries into ``lines``: segment ``j`` is
        ``lines[seg_offsets[j]:seg_offsets[j + 1]]``.  Each segment is
        one scalar ``access_line_array_report`` call.
    num_lines:
        Number of sets of the (direct-mapped) cache this plan targets.

    Raises
    ------
    UnsupportedPlanError
        If any segment touches the same set twice (see module docs).
    """

    def __init__(
        self, lines: np.ndarray, seg_offsets: np.ndarray, num_lines: int
    ) -> None:
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        offsets = np.ascontiguousarray(seg_offsets, dtype=np.int64)
        total = int(lines.size)
        nseg = int(offsets.size) - 1
        self.size = total
        self.num_segments = nseg
        sets = lines % num_lines if total else lines
        seg_ids = np.repeat(np.arange(nseg, dtype=np.int64), np.diff(offsets))
        # Stable sort by set: equal-set positions stay in stream order,
        # so "previous element in the sorted run" = "previous occurrence
        # of this set in the stream".
        order = np.argsort(sets, kind="stable")
        sorted_sets = sets[order]
        sorted_segs = seg_ids[order]
        sorted_lines = lines[order]
        repeat = np.zeros(total, dtype=bool)
        if total > 1:
            repeat[1:] = sorted_sets[1:] == sorted_sets[:-1]
            if bool(np.any(repeat[1:] & (sorted_segs[1:] == sorted_segs[:-1]))):
                raise UnsupportedPlanError(
                    "segment touches the same cache set twice"
                )
        # Dynamic part: first occurrence of each set — resident tag must
        # be gathered from live state at apply() time.
        first = ~repeat
        self._first_sets = sorted_sets[first]
        self._first_lines = sorted_lines[first]
        self._first_segs = sorted_segs[first]
        self._first_positions = order[first]
        # Static part: repeat occurrences observe the previous
        # occurrence's line as resident (valid tag, so every miss here
        # is also an eviction), independent of live state.
        prev_lines = np.empty(0, dtype=np.int64)
        if total > 1:
            prev_lines = sorted_lines[:-1][repeat[1:]]
        repeat_lines = sorted_lines[repeat]
        repeat_miss = repeat_lines != prev_lines
        self._static_miss_positions = order[repeat][repeat_miss]
        self._static_misses = int(repeat_miss.sum())
        self._static_per_segment = np.bincount(
            sorted_segs[repeat][repeat_miss], minlength=nseg
        ).astype(np.int64)
        # Final state: the tag of each touched set is the line of its
        # last occurrence in the plan (hit or miss — see module docs).
        last = np.ones(total, dtype=bool)
        if total > 1:
            last[:-1] = ~repeat[1:]
        self._last_sets = sorted_sets[last]
        self._last_lines = sorted_lines[last]

    def apply(
        self,
        tags: np.ndarray,
        stats: CacheStats | None = None,
        return_mask: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Replay the plan against live ``tags``, mutating them in place.

        Returns the per-segment miss counts (int64, one per segment);
        with ``return_mask`` also returns the per-position miss mask in
        stream order.  ``stats``, when given, accrues hits, misses, and
        evictions exactly as the scalar per-call path would.
        """
        resident = tags[self._first_sets]
        first_miss = self._first_lines != resident
        if self._last_sets.size:
            tags[self._last_sets] = self._last_lines
        per_segment = self._static_per_segment.copy()
        if first_miss.size:
            per_segment += np.bincount(
                self._first_segs[first_miss], minlength=self.num_segments
            )
        if stats is not None:
            dynamic_misses = int(np.count_nonzero(first_miss))
            misses = self._static_misses + dynamic_misses
            stats.misses += misses
            stats.hits += self.size - misses
            stats.evictions += self._static_misses + int(
                np.count_nonzero(first_miss & (resident != -1))
            )
        if return_mask:
            mask = np.zeros(self.size, dtype=bool)
            mask[self._static_miss_positions] = True
            mask[self._first_positions] = first_miss
            return per_segment, mask
        return per_segment


def unit_plan(lines: np.ndarray, num_lines: int) -> SegmentedAccessPlan:
    """A plan of single-element segments: element-sequential semantics."""
    offsets = np.arange(int(np.asarray(lines).size) + 1, dtype=np.int64)
    return SegmentedAccessPlan(lines, offsets, num_lines)
