"""Address / cache-line arithmetic.

A *cache line* is the unit in which memory moves between the CPU and the
rest of the memory system.  The paper's measurements (Tables 1 and 3) are
all expressed in cache lines: "a reference to any element in the cache
line makes the whole cache line part of the working set".

These helpers are deliberately tiny, pure functions so both the cache
simulator and the working-set analyzer share exactly one definition of
line mapping.
"""

from __future__ import annotations

from ..errors import ConfigurationError


def check_power_of_two(value: int, what: str) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` is a power of two."""
    if value <= 0 or value & (value - 1):
        raise ConfigurationError(f"{what} must be a positive power of two, got {value}")


def line_of(addr: int, line_size: int) -> int:
    """Return the line number containing byte address ``addr``.

    >>> line_of(0, 32), line_of(31, 32), line_of(32, 32)
    (0, 0, 1)
    """
    return addr // line_size


def line_base(addr: int, line_size: int) -> int:
    """Return the base byte address of the line containing ``addr``."""
    return (addr // line_size) * line_size


def lines_touched(addr: int, size: int, line_size: int) -> range:
    """Return the range of line numbers touched by a ``size``-byte access.

    A zero-sized access touches no lines.

    >>> list(lines_touched(30, 4, 32))
    [0, 1]
    >>> list(lines_touched(0, 0, 32))
    []
    """
    if size < 0:
        raise ConfigurationError(f"access size must be non-negative, got {size}")
    if size == 0:
        return range(0)
    first = addr // line_size
    last = (addr + size - 1) // line_size
    return range(first, last + 1)


def line_count(size: int, line_size: int) -> int:
    """Number of lines needed to hold ``size`` contiguous, aligned bytes.

    >>> line_count(552, 32)
    18
    """
    if size < 0:
        raise ConfigurationError(f"size must be non-negative, got {size}")
    return -(-size // line_size)
