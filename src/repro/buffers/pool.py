"""A simple mbuf allocator with statistics.

Models the kernel's ``malloc``/``free`` of mbufs enough for the stack to
exercise allocation on the receive path (Table 1 counts "Buffer mgmt"
as a distinct working-set contributor).  Free mbufs are kept on a free
list and recycled LIFO, as real allocators do — which is also what keeps
their cache lines warm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import BufferError_ as MbufError
from ..obs.runtime import active_recorder
from .mbuf import Mbuf, MbufChain


@dataclass
class PoolStats:
    """Allocation counters.

    ``denied`` counts allocations refused by an installed fault gate
    (see :meth:`MbufPool.set_fault_gate`) — distinct from genuine
    limit exhaustion, which raises without counting here.
    """

    allocations: int = 0
    frees: int = 0
    recycled: int = 0
    peak_in_use: int = 0
    denied: int = 0


class MbufPool:
    """A bounded pool of mbufs with a LIFO free list.

    Parameters
    ----------
    limit:
        Maximum number of mbufs that may be simultaneously allocated;
        exceeding it raises (kernels drop packets when mbufs run out).
    """

    def __init__(self, limit: int = 4096) -> None:
        if limit <= 0:
            raise MbufError(f"pool limit must be positive, got {limit}")
        self.limit = limit
        self.stats = PoolStats()
        self._free: list[Mbuf] = []
        self._in_use = 0
        self._fault_gate: Callable[[int], bool] | None = None

    def set_fault_gate(self, gate: Callable[[int], bool] | None) -> None:
        """Install (or clear) a deterministic allocation fault gate.

        ``gate(allocation_index)`` is consulted on every :meth:`alloc`
        with the zero-based index of the *attempted* allocation; when it
        returns False the pool behaves as if exhausted — the allocation
        raises :class:`MbufError` and ``stats.denied`` counts it.
        :mod:`repro.faults` uses count-based gates to carve
        deterministic exhaustion windows into a run, reproducing
        "kernel out of mbufs" episodes per seed.
        """
        self._fault_gate = gate

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def outstanding(self) -> int:
        """Mbufs allocated and not yet freed (alias kept for analysis)."""
        return self._in_use

    def verify_balanced(self) -> None:
        """Raise when allocations outlived the workload (leak check).

        Tests and the static analyzer's runtime counterpart call this
        after draining a stack: every ``alloc`` must have met its
        ``free``/``free_chain``.
        """
        if self._in_use:
            raise MbufError(
                f"{self._in_use} mbuf(s) leaked: {self.stats.allocations} "
                f"alloc(s) vs {self.stats.frees} free(s)"
            )

    def alloc(self, leading_space: int = 0, cluster: bool = False) -> Mbuf:
        """Allocate one mbuf, recycling a free one when possible.

        Bumps the ``mbuf.alloc`` / ``mbuf.recycled`` :mod:`repro.obs`
        counters when a recorder is installed.
        """
        recorder = active_recorder()
        if self._fault_gate is not None and not self._fault_gate(
            self.stats.allocations + self.stats.denied
        ):
            self.stats.denied += 1
            if recorder is not None:
                recorder.count("mbuf.denied")
            raise MbufError(
                f"mbuf pool exhausted (fault window, "
                f"{self.stats.denied} denied)"
            )
        if self._in_use >= self.limit:
            raise MbufError(f"mbuf pool exhausted (limit {self.limit})")
        if recorder is not None:
            recorder.count("mbuf.alloc")
        self.stats.allocations += 1
        self._in_use += 1
        self.stats.peak_in_use = max(self.stats.peak_in_use, self._in_use)
        while self._free:
            candidate = self._free.pop()
            if candidate.cluster == cluster:
                candidate.offset = leading_space
                candidate.length = 0
                self.stats.recycled += 1
                if recorder is not None:
                    recorder.count("mbuf.recycled")
                return candidate
        return Mbuf.empty(leading_space=leading_space, cluster=cluster)

    def free(self, mbuf: Mbuf) -> None:
        """Return one mbuf to the pool."""
        if self._in_use <= 0:
            raise MbufError("free without matching alloc")
        recorder = active_recorder()
        if recorder is not None:
            recorder.count("mbuf.free")
        self._in_use -= 1
        self.stats.frees += 1
        self._free.append(mbuf)

    def free_chain(self, chain: MbufChain) -> None:
        """Return every mbuf of a chain to the pool."""
        for mbuf in chain.mbufs:
            self.free(mbuf)
        chain.mbufs = []
