"""mbuf-style buffer management (4.2BSD scheme; Section 3.2 requirement)."""

from ..errors import BufferError_ as MbufError
from .mbuf import CLUSTER_SIZE, MBUF_SIZE, MLEN, Mbuf, MbufChain
from .pool import MbufPool, PoolStats

__all__ = [
    "CLUSTER_SIZE",
    "MBUF_SIZE",
    "MLEN",
    "Mbuf",
    "MbufChain",
    "MbufError",
    "MbufPool",
    "PoolStats",
]
