"""mbuf-style message buffers (the 4.2BSD scheme the paper relies on).

LDLP "requires a buffer management scheme where lower layers hand off
their buffers to the higher layers, and don't destroy them after calling
the upper layers.  The 4.4BSD mbuf system works well." (Section 3.2)

An :class:`Mbuf` is a fixed-size buffer holding a window of bytes; an
:class:`MbufChain` is a linked sequence of mbufs representing one
message.  The canonical operations — prepending and stripping headers,
appending, trimming (``m_adj``), splitting, and linearizing — never copy
payload bytes between layers except where a real stack would
(``pullup`` and explicit copies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import BufferError_ as MbufError

#: Standard mbuf size in 4.4BSD.
MBUF_SIZE = 128

#: Bytes usable for data in a plain mbuf (after the header in real BSD;
#: we keep the constant for realistic fragmentation behaviour).
MLEN = 108

#: Size of an external cluster.
CLUSTER_SIZE = 2048


@dataclass
class Mbuf:
    """One buffer segment: a byte array plus a valid data window.

    Attributes
    ----------
    storage:
        The backing bytes (mutable).
    offset:
        Index of the first valid byte within ``storage``.
    length:
        Number of valid bytes.
    cluster:
        True when backed by an external cluster (affects capacity only).
    """

    storage: bytearray
    offset: int = 0
    length: int = 0
    cluster: bool = False

    @classmethod
    def empty(cls, leading_space: int = 0, cluster: bool = False) -> "Mbuf":
        """Allocate an empty mbuf, optionally reserving header space."""
        capacity = CLUSTER_SIZE if cluster else MLEN
        if not 0 <= leading_space <= capacity:
            raise MbufError(
                f"leading space {leading_space} outside [0, {capacity}]"
            )
        return cls(bytearray(capacity), offset=leading_space, cluster=cluster)

    @classmethod
    def from_bytes(cls, data: bytes, leading_space: int = 0) -> "Mbuf":
        """Allocate an mbuf (cluster if needed) holding ``data``."""
        cluster = leading_space + len(data) > MLEN
        capacity = CLUSTER_SIZE if cluster else MLEN
        if leading_space + len(data) > capacity:
            raise MbufError(
                f"{len(data)} bytes + {leading_space} leading space exceeds "
                f"cluster capacity {capacity}"
            )
        mbuf = cls(bytearray(capacity), offset=leading_space, cluster=cluster)
        mbuf.storage[leading_space : leading_space + len(data)] = data
        mbuf.length = len(data)
        return mbuf

    @property
    def capacity(self) -> int:
        return len(self.storage)

    @property
    def leading_space(self) -> int:
        """Free bytes before the data window (room to prepend headers)."""
        return self.offset

    @property
    def trailing_space(self) -> int:
        """Free bytes after the data window (room to append)."""
        return self.capacity - self.offset - self.length

    def data(self) -> memoryview:
        """A zero-copy view of the valid bytes."""
        return memoryview(self.storage)[self.offset : self.offset + self.length]

    def prepend(self, header: bytes) -> None:
        """Prepend bytes into the leading space (no copy of existing data)."""
        if len(header) > self.leading_space:
            raise MbufError(
                f"no leading space for {len(header)}-byte header "
                f"(have {self.leading_space})"
            )
        self.offset -= len(header)
        self.storage[self.offset : self.offset + len(header)] = header
        self.length += len(header)

    def strip(self, count: int) -> bytes:
        """Remove and return the first ``count`` bytes (window shrink)."""
        if count > self.length:
            raise MbufError(f"cannot strip {count} of {self.length} bytes")
        taken = bytes(self.storage[self.offset : self.offset + count])
        self.offset += count
        self.length -= count
        return taken

    def append(self, data: bytes) -> None:
        """Append bytes into the trailing space."""
        if len(data) > self.trailing_space:
            raise MbufError(
                f"no trailing space for {len(data)} bytes (have "
                f"{self.trailing_space})"
            )
        end = self.offset + self.length
        self.storage[end : end + len(data)] = data
        self.length += len(data)

    def trim_tail(self, count: int) -> None:
        """Drop the last ``count`` bytes."""
        if count > self.length:
            raise MbufError(f"cannot trim {count} of {self.length} bytes")
        self.length -= count


class MbufChain:
    """A message: a sequence of mbufs traversed in order.

    The chain owns its mbufs; layers pass the chain itself up and down
    the stack (LDLP's hand-off requirement) rather than copying.
    """

    def __init__(self, mbufs: list[Mbuf] | None = None) -> None:
        self.mbufs: list[Mbuf] = mbufs or []

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def from_bytes(
        cls, data: bytes, leading_space: int = 64, segment_size: int | None = None
    ) -> "MbufChain":
        """Build a chain holding ``data``.

        ``segment_size`` forces fragmentation into multiple mbufs, as a
        driver copying from a DMA ring would produce; by default the
        data lands in a single (possibly cluster) mbuf.
        """
        chain = cls()
        if segment_size is not None and segment_size <= 0:
            raise MbufError(f"segment size must be positive, got {segment_size}")
        if not data:
            chain.mbufs.append(Mbuf.empty(leading_space))
            return chain
        step = segment_size if segment_size is not None else len(data)
        for start in range(0, len(data), step):
            piece = data[start : start + step]
            space = leading_space if start == 0 else 0
            chain.mbufs.append(Mbuf.from_bytes(piece, leading_space=space))
        return chain

    # ------------------------------------------------------------------
    # Inspection

    def __len__(self) -> int:
        return sum(mbuf.length for mbuf in self.mbufs)

    def __iter__(self) -> Iterator[Mbuf]:
        return iter(self.mbufs)

    def __bytes__(self) -> bytes:
        return b"".join(bytes(mbuf.data()) for mbuf in self.mbufs)

    @property
    def segment_count(self) -> int:
        return len(self.mbufs)

    def peek(self, count: int, offset: int = 0) -> bytes:
        """Read ``count`` bytes at ``offset`` without modifying the chain.

        Crosses mbuf boundaries; this is the "peeking inside buffers"
        cost the paper's Section 5.1 complains about.
        """
        if offset < 0 or count < 0:
            raise MbufError("peek offset and count must be non-negative")
        if offset + count > len(self):
            raise MbufError(
                f"peek of {count} bytes at {offset} beyond chain length {len(self)}"
            )
        out = bytearray()
        remaining_offset = offset
        need = count
        for mbuf in self.mbufs:
            if need == 0:
                break
            if remaining_offset >= mbuf.length:
                remaining_offset -= mbuf.length
                continue
            view = mbuf.data()[remaining_offset:]
            take = min(need, len(view))
            out += view[:take]
            need -= take
            remaining_offset = 0
        return bytes(out)

    # ------------------------------------------------------------------
    # Header operations

    def prepend(self, header: bytes) -> None:
        """Prepend a header, reusing leading space when available."""
        if self.mbufs and self.mbufs[0].leading_space >= len(header):
            self.mbufs[0].prepend(header)
        else:
            self.mbufs.insert(0, Mbuf.from_bytes(header, leading_space=0))

    def strip(self, count: int) -> bytes:
        """Remove and return the first ``count`` bytes of the chain."""
        if count > len(self):
            raise MbufError(f"cannot strip {count} of {len(self)} bytes")
        out = bytearray()
        need = count
        while need > 0:
            head = self.mbufs[0]
            take = min(need, head.length)
            out += head.strip(take)
            need -= take
            if head.length == 0 and len(self.mbufs) > 1:
                self.mbufs.pop(0)
        return bytes(out)

    def pullup(self, count: int) -> None:
        """Ensure the first ``count`` bytes are contiguous in one mbuf.

        Copies only when the bytes are actually split (``m_pullup``).
        """
        if count > len(self):
            raise MbufError(f"cannot pull up {count} of {len(self)} bytes")
        if not self.mbufs or self.mbufs[0].length >= count:
            return
        gathered = self.strip(count)
        self.mbufs.insert(0, Mbuf.from_bytes(gathered, leading_space=0))

    # ------------------------------------------------------------------
    # Whole-message operations

    def append_chain(self, other: "MbufChain") -> None:
        """Concatenate ``other`` onto this chain without copying."""
        self.mbufs.extend(other.mbufs)
        other.mbufs = []

    def adj(self, count: int) -> None:
        """``m_adj``: trim ``count`` bytes from the front (positive) or
        back (negative) of the message."""
        if count >= 0:
            self.strip(count)
            return
        need = -count
        if need > len(self):
            raise MbufError(f"cannot trim {need} of {len(self)} bytes")
        for mbuf in reversed(self.mbufs):
            take = min(need, mbuf.length)
            mbuf.trim_tail(take)
            need -= take
            if need == 0:
                break
        self.mbufs = [m for m in self.mbufs if m.length > 0] or self.mbufs[:1]

    def split(self, count: int) -> "MbufChain":
        """Split after ``count`` bytes; returns the tail as a new chain."""
        if count > len(self):
            raise MbufError(f"cannot split at {count} in {len(self)}-byte chain")
        tail = MbufChain()
        consumed = 0
        for index, mbuf in enumerate(self.mbufs):
            if consumed + mbuf.length <= count:
                consumed += mbuf.length
                continue
            within = count - consumed
            if within > 0:
                moved = bytes(mbuf.data()[within:])
                mbuf.trim_tail(len(moved))
                tail.mbufs.append(Mbuf.from_bytes(moved, leading_space=0))
                tail.mbufs.extend(self.mbufs[index + 1 :])
                del self.mbufs[index + 1 :]
            else:
                tail.mbufs.extend(self.mbufs[index:])
                del self.mbufs[index:]
            break
        if not self.mbufs:
            self.mbufs.append(Mbuf.empty())
        return tail

    def compact(self) -> None:
        """``sbcompress``-style compaction into as few mbufs as possible."""
        data = bytes(self)
        self.mbufs = MbufChain.from_bytes(data, leading_space=0).mbufs
