"""A signalling switch: call state machines over schedulable layers.

Implements the paper's motivating workload — an ATM-style switch
processing SETUP/RELEASE messages — as a three-layer stack
(SAAL framing → Q.93B parsing → call control), so the same LDLP
machinery that speeds up TCP receive processing can be measured on the
protocol the paper actually cares about.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

from ..core.layer import Layer, LayerFootprint, Message
from ..errors import SignallingError
from .q93b import (
    InfoElementId,
    MessageType,
    SignallingMessage,
    connect,
    release_complete,
)

#: SAAL-ish trailer: sequence number (4) + CRC32 (4).
SAAL_TRAILER = struct.Struct("!II")

#: Footprints: signalling layers are code-heavy relative to their tiny
#: messages — the definition of a small-message protocol (Figure 4).
SAAL_FOOTPRINT = LayerFootprint(
    code_bytes=5120, data_bytes=512, base_cycles=400.0, per_byte_cycles=0.5
)
Q93B_FOOTPRINT = LayerFootprint(
    code_bytes=9216, data_bytes=768, base_cycles=900.0, per_byte_cycles=0.25
)
CALL_CONTROL_FOOTPRINT = LayerFootprint(
    code_bytes=7168, data_bytes=1024, base_cycles=700.0, per_byte_cycles=0.0
)


def saal_frame(payload: bytes, sequence: int) -> bytes:
    """Wrap a signalling message in the SAAL-ish reliable framing."""
    crc = zlib.crc32(payload + struct.pack("!I", sequence))
    return payload + SAAL_TRAILER.pack(sequence, crc)


def saal_unframe(frame: bytes) -> tuple[bytes, int]:
    """Validate and strip the SAAL trailer; returns (payload, sequence)."""
    if len(frame) < SAAL_TRAILER.size:
        raise SignallingError("frame shorter than SAAL trailer")
    payload = frame[: -SAAL_TRAILER.size]
    sequence, crc = SAAL_TRAILER.unpack_from(frame, len(frame) - SAAL_TRAILER.size)
    expected = zlib.crc32(payload + struct.pack("!I", sequence))
    if crc != expected:
        raise SignallingError(f"SAAL CRC mismatch on sequence {sequence}")
    return payload, sequence


class CallState(enum.Enum):
    NULL = "NULL"
    ACTIVE = "ACTIVE"
    RELEASED = "RELEASED"


@dataclass
class CallRecord:
    """Per-call state held by the switch."""

    call_ref: int
    state: CallState
    called_party: str = ""
    vpi: int = 0
    vci: int = 0


@dataclass
class SwitchStats:
    frames_in: int = 0
    bad_frames: int = 0
    out_of_sequence: int = 0
    setups: int = 0
    releases: int = 0
    rejected: int = 0
    active_calls_peak: int = 0


class SaalLayer(Layer):
    """Reliable framing: CRC check and in-order sequence enforcement."""

    def __init__(self, stats: SwitchStats) -> None:
        super().__init__("saal", SAAL_FOOTPRINT)
        self.stats = stats
        self.expected_seq = 0

    def deliver(self, message: Message) -> list[Message]:
        self.stats.frames_in += 1
        try:
            payload, sequence = saal_unframe(bytes(message.payload))
        except SignallingError:
            self.stats.bad_frames += 1
            return []
        if sequence != self.expected_seq:
            # LDLP batching never reorders within a batch, so a gap
            # means real loss; count and resynchronize.
            self.stats.out_of_sequence += 1
            self.expected_seq = sequence
        self.expected_seq += 1
        message.payload = payload
        return [message]


class Q93bLayer(Layer):
    """Message parsing and mandatory-IE validation."""

    def __init__(self, stats: SwitchStats) -> None:
        super().__init__("q93b", Q93B_FOOTPRINT)
        self.stats = stats

    def deliver(self, message: Message) -> list[Message]:
        try:
            parsed = SignallingMessage.parse(message.payload)
            if parsed.msg_type is MessageType.SETUP:
                parsed.require(InfoElementId.CALLED_PARTY)
        except SignallingError:
            self.stats.bad_frames += 1
            return []
        message.meta["signalling"] = parsed
        return [message]


class CallControlLayer(Layer):
    """The per-call state machine: admits, connects, and releases calls.

    Responses are serialized back onto the transmit callback, just as
    the TCP layer emits ACKs.
    """

    def __init__(
        self,
        stats: SwitchStats,
        transmit,
        max_calls: int = 65536,
        vpi: int = 1,
    ) -> None:
        super().__init__("call-control", CALL_CONTROL_FOOTPRINT)
        self.stats = stats
        self.transmit = transmit
        self.max_calls = max_calls
        self.vpi = vpi
        self.calls: dict[int, CallRecord] = {}
        self._next_vci = 32  # low VCIs reserved, as on real switches

    def deliver(self, message: Message) -> list[Message]:
        parsed: SignallingMessage = message.meta["signalling"]
        if parsed.msg_type is MessageType.SETUP:
            self._handle_setup(parsed)
        elif parsed.msg_type is MessageType.RELEASE:
            self._handle_release(parsed)
        elif parsed.msg_type is MessageType.STATUS:
            pass  # STATUS is informational
        else:
            self.stats.rejected += 1
        return []

    def _handle_setup(self, parsed: SignallingMessage) -> None:
        if parsed.call_ref in self.calls or len(self.calls) >= self.max_calls:
            self.stats.rejected += 1
            self.transmit(release_complete(parsed.call_ref, cause=47))
            return
        vci = self._next_vci
        self._next_vci += 1
        record = CallRecord(
            call_ref=parsed.call_ref,
            state=CallState.ACTIVE,
            called_party=parsed.require(InfoElementId.CALLED_PARTY).value.decode(
                "ascii", "replace"
            ),
            vpi=self.vpi,
            vci=vci,
        )
        self.calls[parsed.call_ref] = record
        self.stats.setups += 1
        self.stats.active_calls_peak = max(
            self.stats.active_calls_peak, len(self.calls)
        )
        self.transmit(connect(parsed.call_ref, record.vpi, record.vci))

    def _handle_release(self, parsed: SignallingMessage) -> None:
        record = self.calls.pop(parsed.call_ref, None)
        if record is None:
            self.stats.rejected += 1
            self.transmit(release_complete(parsed.call_ref, cause=81))
            return
        record.state = CallState.RELEASED
        self.stats.releases += 1
        self.transmit(release_complete(parsed.call_ref))


@dataclass
class SignallingSwitch:
    """A wired-up switch: layers + state + transmit queue."""

    layers: list[Layer]
    call_control: CallControlLayer
    stats: SwitchStats
    transmitted: list[SignallingMessage]

    @property
    def active_calls(self) -> int:
        return len(self.call_control.calls)


def build_switch(max_calls: int = 65536) -> SignallingSwitch:
    """Build the SAAL → Q.93B → call-control stack."""
    stats = SwitchStats()
    transmitted: list[SignallingMessage] = []
    call_control = CallControlLayer(stats, transmitted.append, max_calls=max_calls)
    layers: list[Layer] = [SaalLayer(stats), Q93bLayer(stats), call_control]
    return SignallingSwitch(
        layers=layers,
        call_control=call_control,
        stats=stats,
        transmitted=transmitted,
    )
