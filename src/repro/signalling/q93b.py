"""A miniature Q.93B-style signalling protocol.

The paper's motivating workload is ATM connection setup: "Our
performance goal is to support 10000 pairs of setup/teardown requests
per second with processing latency of 100 microseconds for setup
requests, using just a commodity workstation processor."

This module implements a compact but real signalling wire protocol in
the Q.93B mould: a protocol discriminator, a call reference, a message
type, and TLV information elements — enough to exercise parse/validate/
state-machine/respond small-message processing for real.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..errors import SignallingError

#: Q.93B protocol discriminator.
DISCRIMINATOR = 0x09

#: Header: discriminator (1), call-reference length (1, always 3 here),
#: call reference (3), message type (1), message length (2).
_HEADER = struct.Struct("!BB3sBH")
HEADER_LEN = _HEADER.size

MAX_CALL_REF = (1 << 23) - 1  # high bit of the 3-byte field is a flag


class MessageType(enum.IntEnum):
    """The connection-control message types we implement."""

    SETUP = 0x05
    CALL_PROCEEDING = 0x02
    CONNECT = 0x07
    CONNECT_ACK = 0x0F
    RELEASE = 0x4D
    RELEASE_COMPLETE = 0x5A
    STATUS = 0x7D


class InfoElementId(enum.IntEnum):
    """Information-element identifiers (TLV tags)."""

    CALLED_PARTY = 0x70
    CALLING_PARTY = 0x6C
    TRAFFIC_DESCRIPTOR = 0x59
    QOS_PARAMETER = 0x5C
    CONNECTION_ID = 0x5A
    CAUSE = 0x08


@dataclass(frozen=True)
class InfoElement:
    """One TLV information element."""

    element_id: int
    value: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.element_id <= 0xFF:
            raise SignallingError(f"IE id {self.element_id:#x} out of range")
        if len(self.value) > 0xFFFF:
            raise SignallingError("IE value too long")

    def serialize(self) -> bytes:
        return struct.pack("!BH", self.element_id, len(self.value)) + self.value


@dataclass(frozen=True)
class SignallingMessage:
    """A parsed signalling message."""

    msg_type: MessageType
    call_ref: int
    #: True on messages sent *from* the side that allocated the call ref.
    from_origin: bool = True
    elements: tuple[InfoElement, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.call_ref <= MAX_CALL_REF:
            raise SignallingError(f"call reference {self.call_ref} out of range")

    def find(self, element_id: int) -> InfoElement | None:
        for element in self.elements:
            if element.element_id == element_id:
                return element
        return None

    def require(self, element_id: int) -> InfoElement:
        element = self.find(element_id)
        if element is None:
            raise SignallingError(
                f"{self.msg_type.name} missing mandatory IE {element_id:#x}"
            )
        return element

    def serialize(self) -> bytes:
        body = b"".join(element.serialize() for element in self.elements)
        ref = self.call_ref | (0 if self.from_origin else 1 << 23)
        header = _HEADER.pack(
            DISCRIMINATOR,
            3,
            ref.to_bytes(3, "big"),
            int(self.msg_type),
            len(body),
        )
        return header + body

    @classmethod
    def parse(cls, data: bytes | memoryview) -> "SignallingMessage":
        data = bytes(data)
        if len(data) < HEADER_LEN:
            raise SignallingError(
                f"message needs {HEADER_LEN} header bytes, got {len(data)}"
            )
        disc, ref_len, ref_bytes, msg_type, length = _HEADER.unpack_from(data)
        if disc != DISCRIMINATOR:
            raise SignallingError(f"bad protocol discriminator {disc:#04x}")
        if ref_len != 3:
            raise SignallingError(f"unsupported call-reference length {ref_len}")
        if len(data) < HEADER_LEN + length:
            raise SignallingError(
                f"truncated message: body {length}, have {len(data) - HEADER_LEN}"
            )
        try:
            parsed_type = MessageType(msg_type)
        except ValueError as exc:
            raise SignallingError(f"unknown message type {msg_type:#04x}") from exc
        raw_ref = int.from_bytes(ref_bytes, "big")
        elements = cls._parse_elements(data[HEADER_LEN : HEADER_LEN + length])
        return cls(
            msg_type=parsed_type,
            call_ref=raw_ref & MAX_CALL_REF,
            from_origin=not bool(raw_ref >> 23),
            elements=elements,
        )

    @staticmethod
    def _parse_elements(body: bytes) -> tuple[InfoElement, ...]:
        elements: list[InfoElement] = []
        offset = 0
        while offset < len(body):
            if offset + 3 > len(body):
                raise SignallingError("truncated information element header")
            element_id, length = struct.unpack_from("!BH", body, offset)
            offset += 3
            if offset + length > len(body):
                raise SignallingError("truncated information element value")
            elements.append(InfoElement(element_id, body[offset : offset + length]))
            offset += length
        return tuple(elements)


# ----------------------------------------------------------------------
# Convenience constructors for the common messages


def setup(
    call_ref: int,
    called_party: str,
    calling_party: str = "",
    peak_cell_rate: int = 1000,
) -> SignallingMessage:
    """A SETUP request."""
    elements = [
        InfoElement(InfoElementId.CALLED_PARTY, called_party.encode("ascii")),
        InfoElement(
            InfoElementId.TRAFFIC_DESCRIPTOR, struct.pack("!I", peak_cell_rate)
        ),
    ]
    if calling_party:
        elements.append(
            InfoElement(InfoElementId.CALLING_PARTY, calling_party.encode("ascii"))
        )
    return SignallingMessage(MessageType.SETUP, call_ref, elements=tuple(elements))


def connect(call_ref: int, vpi: int, vci: int) -> SignallingMessage:
    """A CONNECT response carrying the allocated VPI/VCI."""
    return SignallingMessage(
        MessageType.CONNECT,
        call_ref,
        from_origin=False,
        elements=(
            InfoElement(InfoElementId.CONNECTION_ID, struct.pack("!HH", vpi, vci)),
        ),
    )


def release(call_ref: int, cause: int = 16) -> SignallingMessage:
    """A RELEASE request (cause 16 = normal clearing)."""
    return SignallingMessage(
        MessageType.RELEASE,
        call_ref,
        elements=(InfoElement(InfoElementId.CAUSE, struct.pack("!B", cause)),),
    )


def release_complete(call_ref: int, cause: int = 16) -> SignallingMessage:
    return SignallingMessage(
        MessageType.RELEASE_COMPLETE,
        call_ref,
        from_origin=False,
        elements=(InfoElement(InfoElementId.CAUSE, struct.pack("!B", cause)),),
    )
