"""Mini-Q.93B signalling: the paper's motivating small-message workload."""

from .q93b import (
    DISCRIMINATOR,
    InfoElement,
    InfoElementId,
    MessageType,
    SignallingMessage,
    connect,
    release,
    release_complete,
    setup,
)
from .switch import (
    CallControlLayer,
    CallRecord,
    CallState,
    Q93bLayer,
    SaalLayer,
    SignallingSwitch,
    SwitchStats,
    build_switch,
    saal_frame,
    saal_unframe,
)

__all__ = [
    "CallControlLayer",
    "CallRecord",
    "CallState",
    "DISCRIMINATOR",
    "InfoElement",
    "InfoElementId",
    "MessageType",
    "Q93bLayer",
    "SaalLayer",
    "SignallingMessage",
    "SignallingSwitch",
    "SwitchStats",
    "build_switch",
    "connect",
    "release",
    "release_complete",
    "saal_frame",
    "saal_unframe",
    "setup",
]
