"""Docstring-coverage check (an ``interrogate`` equivalent, stdlib-only).

Walks Python sources with :mod:`ast` and computes the fraction of
*public definitions* — modules, classes, functions, and methods whose
names do not start with ``_`` — that carry a docstring.  CI gates the
instrumented packages at a minimum coverage, so the documentation pass
that accompanied the obs subsystem cannot silently rot.

What counts, mirroring ``interrogate``'s defaults:

* every module file is one definition (its module docstring);
* every public ``class``, ``def``, and ``async def`` is one definition;
* dunder methods (``__init__`` and friends) and any name with a
  leading underscore are *excluded* — private helpers may stay terse;
* ``@overload`` stubs and bodies that are a bare ``...`` are excluded
  (nothing to document beyond the signature).

Usage::

    python -m repro.analysis.doccheck src/repro --min 80
    python -m repro.analysis.doccheck src/repro/obs --min 100 -q

Exit status: 0 when coverage meets the threshold, 1 when it falls
short, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path

#: Default minimum coverage percentage (the CI gate's threshold).
DEFAULT_MIN_COVERAGE = 80.0


@dataclass
class FileReport:
    """Coverage of one source file: totals plus the undocumented names."""

    path: Path
    total: int = 0
    documented: int = 0
    missing: list[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Documented fraction as a percentage (100.0 when empty)."""
        return 100.0 * self.documented / self.total if self.total else 100.0


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_stub(node: ast.AST) -> bool:
    """True for ``...``-bodied defs and ``@overload`` declarations."""
    decorators = getattr(node, "decorator_list", [])
    for decorator in decorators:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = getattr(target, "attr", getattr(target, "id", ""))
        if name == "overload":
            return True
    body = getattr(node, "body", [])
    return (
        len(body) == 1
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and body[0].value.value is Ellipsis
    )


def check_file(path: Path) -> FileReport:
    """Parse one file and count its documented public definitions."""
    report = FileReport(path=path)
    tree = ast.parse(path.read_text(), filename=str(path))

    report.total += 1
    if ast.get_docstring(tree) is not None:
        report.documented += 1
    else:
        report.missing.append("<module>")

    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        if not _is_public(node.name) or _is_stub(node):
            continue
        report.total += 1
        if ast.get_docstring(node) is not None:
            report.documented += 1
        else:
            report.missing.append(f"{node.name} (line {node.lineno})")
    return report


def iter_sources(targets: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for target in targets:
        if target.is_dir():
            files.update(target.rglob("*.py"))
        elif target.suffix == ".py":
            files.add(target)
    return sorted(files)


def run_check(
    targets: list[Path], minimum: float, quiet: bool = False
) -> int:
    """Check coverage over ``targets``; print a report; return exit code."""
    reports = [check_file(path) for path in iter_sources(targets)]
    if not reports:
        print("doccheck: no Python files found", file=sys.stderr)
        return 2
    total = sum(report.total for report in reports)
    documented = sum(report.documented for report in reports)
    coverage = 100.0 * documented / total if total else 100.0

    if not quiet:
        for report in sorted(reports, key=lambda r: r.coverage):
            if not report.missing:
                continue
            print(f"{report.path} ({report.coverage:.0f}%):")
            for name in report.missing:
                print(f"  missing docstring: {name}")
    verdict = "PASS" if coverage >= minimum else "FAIL"
    print(
        f"doccheck {verdict}: {documented}/{total} public definitions "
        f"documented ({coverage:.1f}%, minimum {minimum:.0f}%) across "
        f"{len(reports)} files"
    )
    return 0 if coverage >= minimum else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry: parse arguments and run the coverage check."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.doccheck",
        description="Docstring-coverage gate over public definitions.",
    )
    parser.add_argument(
        "targets", nargs="+", type=Path, help="files or directories to check"
    )
    parser.add_argument(
        "--min",
        type=float,
        default=DEFAULT_MIN_COVERAGE,
        dest="minimum",
        help=f"minimum coverage percentage (default {DEFAULT_MIN_COVERAGE:.0f})",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="print only the summary line, not per-file misses",
    )
    args = parser.parse_args(argv)
    return run_check(args.targets, args.minimum, args.quiet)


if __name__ == "__main__":
    sys.exit(main())
