"""Text and JSON reporters for analyzer findings.

The text reporter is for humans at a terminal (one line per finding,
grouped counts at the end); the JSON reporter is for CI and tooling
(stable schema, rule metadata inlined so consumers need no registry).
"""

from __future__ import annotations

import json

from .findings import Finding, count_by_severity


def order_findings(findings: list[Finding]) -> list[Finding]:
    """Findings in the canonical report order.

    Sorted by (target, line, rule id, message) — a total, content-only
    order, so a report is byte-identical however the checkers that
    produced it happened to interleave (and at any ``PYTHONHASHSEED``).
    """
    return sorted(
        findings,
        key=lambda f: (f.target, f.line or 0, f.rule_id, f.message),
    )


def finding_to_dict(finding: Finding) -> dict[str, object]:
    """The JSON-schema form of one finding (rule metadata inlined)."""
    rule = finding.rule
    return {
        "rule_id": finding.rule_id,
        "rule": rule.name,
        "severity": rule.severity.value,
        "paper_section": rule.paper_section,
        "target": finding.target,
        "line": finding.line,
        "location": finding.location,
        "message": finding.message,
        "details": finding.details,
    }


def _json_default(value: object) -> object:
    # numpy scalars and other non-JSON leaves occasionally reach
    # ``details``; coerce to plain Python rather than crash the report.
    for converter in (int, float, str):
        try:
            return converter(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            continue
    raise TypeError(f"unserializable detail value: {value!r}")


def render_json(
    findings: list[Finding],
    summaries: dict[str, object] | None = None,
) -> str:
    """The machine-readable report (one JSON object)."""
    payload: dict[str, object] = {
        "analyzer": "repro.analysis",
        "counts": count_by_severity(findings),
        "findings": [finding_to_dict(finding) for finding in findings],
    }
    if summaries:
        payload["stacks"] = summaries
    return json.dumps(payload, indent=2, default=_json_default)


def render_text(
    findings: list[Finding],
    summaries: dict[str, object] | None = None,
) -> str:
    """The human-readable report."""
    lines: list[str] = []
    for finding in findings:
        rule = finding.rule
        lines.append(
            f"{finding.location}: {rule.severity.value} {finding.rule_id} "
            f"{rule.name}: {finding.message}"
        )
    counts = count_by_severity(findings)
    if findings:
        lines.append("")
        lines.append(
            f"{len(findings)} finding(s): {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info"
        )
    else:
        lines.append("no findings")
    if summaries:
        lines.append("")
        for name, summary in summaries.items():
            lines.append(f"[{name}] {summary}")
    return "\n".join(lines)
