"""Scheduler-configuration validation (the SCHED* rules).

Grouped LDLP only works when the groups form an ordered partition of
the stack: overlap means double processing, gaps mean unreachable
layers, disorder means completions leave the stack out of order.  The
runtime constructor enforces this with a typed
:class:`~repro.errors.GroupingError`; this module reports the *same*
diagnosis (via :func:`repro.core.scheduler.diagnose_groups`) as lint
findings so a bad config is caught before any simulation is built.

It also flags a subtler hazard: a layer that coalesces messages
(overrides ``flush``) under a scheduler that never calls ``flush`` —
the held messages would be stranded forever.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..core.scheduler import diagnose_groups
from .findings import Finding

if TYPE_CHECKING:
    from ..core.scheduler import Scheduler


def check_group_partition(
    num_layers: int,
    groups: Sequence[Sequence[int]],
    target: str = "scheduler",
) -> list[Finding]:
    """Lint a grouping against the ordered-partition contract."""
    diagnosis = diagnose_groups(num_layers, [list(group) for group in groups])
    findings: list[Finding] = []
    if diagnosis.overlapping:
        findings.append(
            Finding(
                "SCHED001",
                f"layer indices {list(diagnosis.overlapping)} appear in more "
                f"than one group; those layers would process some messages "
                f"twice",
                target,
                details={"overlapping": list(diagnosis.overlapping)},
            )
        )
    unreachable = list(diagnosis.missing) + list(diagnosis.out_of_range)
    if unreachable or diagnosis.empty_groups:
        parts: list[str] = []
        if diagnosis.missing:
            parts.append(
                f"layer indices {list(diagnosis.missing)} are covered by no "
                f"group (messages never reach them)"
            )
        if diagnosis.out_of_range:
            parts.append(
                f"indices {list(diagnosis.out_of_range)} are outside the "
                f"stack (0..{num_layers - 1})"
            )
        if diagnosis.empty_groups:
            parts.append(
                f"groups at positions {list(diagnosis.empty_groups)} are empty"
            )
        findings.append(
            Finding(
                "SCHED002",
                "; ".join(parts),
                target,
                details={
                    "missing": list(diagnosis.missing),
                    "out_of_range": list(diagnosis.out_of_range),
                    "empty_groups": list(diagnosis.empty_groups),
                },
            )
        )
    if diagnosis.misordered:
        findings.append(
            Finding(
                "SCHED003",
                f"layer indices {list(diagnosis.misordered)} break ascending "
                f"stack order in the grouping; messages would complete out "
                f"of order or be routed backwards",
                target,
                details={"misordered": list(diagnosis.misordered)},
            )
        )
    return findings


def check_scheduler_config(
    scheduler: "Scheduler", target: str | None = None
) -> list[Finding]:
    """Validate a live scheduler instance's static configuration."""
    config = scheduler.describe_config()
    label = target or f"scheduler:{config['scheduler']}"
    findings: list[Finding] = []
    if "groups" in config:
        findings.extend(
            check_group_partition(len(config["layers"]), config["groups"], label)
        )
    if not config["uses_queues"]:
        holders = [
            str(layer["name"])
            for layer in config["layers"]
            if layer.get("holds_messages")
        ]
        if holders:
            findings.append(
                Finding(
                    "SCHED004",
                    f"layer(s) {', '.join(holders)} coalesce messages "
                    f"(override flush) but {config['scheduler']} never calls "
                    f"flush; held messages would be stranded",
                    label,
                    details={"layers": holders, "scheduler": config["scheduler"]},
                )
            )
    return findings
