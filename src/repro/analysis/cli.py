"""``python -m repro.analysis`` — the static analyzer's command line.

Examples::

    # mbuf lifecycle lint over sources
    python -m repro.analysis examples/ src/repro/protocols

    # layout + budget + scheduler-config lint of the modelled stacks
    python -m repro.analysis --stack synthetic --stack netbsd

    # whole-package determinism & parallel-purity gate (DET rules)
    python -m repro.analysis --determinism

    # everything, machine-readable, for CI
    python -m repro.analysis examples/ --stack synthetic --format json

    # the rule catalog
    python -m repro.analysis --list-rules

Exit status: 0 when no finding reaches the ``--fail-on`` threshold,
1 when one does, 2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import sys

from ..errors import ReproError
from .findings import RULES, Finding, Severity
from .mbuflint import lint_paths
from .reporters import order_findings, render_json, render_text
from .stacks import STACK_NAMES, analyze_stack


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static cache-conflict, working-set, scheduler-config and "
            "mbuf-lifecycle analysis for the LDLP reproduction."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="Python files or directories to run the mbuf lifecycle lint on",
    )
    parser.add_argument(
        "--stack",
        action="append",
        choices=STACK_NAMES,
        default=None,
        help="also analyze a modelled stack (repeatable)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="placement seed for --stack runs"
    )
    parser.add_argument(
        "--placement",
        choices=("random", "sequential"),
        default="random",
        help="code placement strategy for --stack runs",
    )
    parser.add_argument(
        "--harness",
        action="store_true",
        help=(
            "check every experiment's sweep-point import closure against "
            "its declared cache sources (HARN001) and dispatch-policy "
            "sweep coverage (HARN002)"
        ),
    )
    parser.add_argument(
        "--determinism",
        action="store_true",
        help=(
            "run the DET rule family: whole-package determinism lint "
            "(unseeded RNG, salted hash, wall clocks, unordered "
            "iteration) plus sweep-point parallel purity (DET001-DET005)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (id, name, severity, summary) and exit",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="lowest severity that makes the exit status non-zero",
    )
    return parser


def _should_fail(findings: list[Finding], threshold: str) -> bool:
    if threshold == "never":
        return False
    floor = Severity.ERROR if threshold == "error" else Severity.WARNING
    return any(finding.severity.rank >= floor.rank for finding in findings)


def run(args: argparse.Namespace) -> tuple[list[Finding], dict[str, object]]:
    """Collect findings for parsed arguments (shared with ldlp-experiment)."""
    findings: list[Finding] = []
    summaries: dict[str, object] = {}
    if args.targets:
        findings.extend(lint_paths(list(args.targets)))
    for stack in args.stack or []:
        analysis = analyze_stack(stack, seed=args.seed, placement=args.placement)
        findings.extend(analysis.findings)
        summaries[f"stack:{analysis.name}"] = analysis.summary
    if args.harness:
        from .harnesscheck import check_all_specs

        harness_findings = check_all_specs()
        findings.extend(harness_findings)
        summaries["harness"] = {
            "experiments_checked": True,
            "harn_findings": len(harness_findings),
        }
    if args.determinism:
        from .detcheck import check_determinism

        det_findings = check_determinism()
        findings.extend(det_findings)
        summaries["determinism"] = {
            "package_scanned": True,
            "det_findings": len(det_findings),
        }
    return findings, summaries


def list_rules() -> str:
    """The rule registry rendered as one line per rule, sorted by id."""
    lines = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(
            f"{rule.rule_id}  {rule.name:<26} {rule.severity.value:<8} "
            f"[{rule.paper_section}]"
        )
        lines.append(f"        {rule.summary}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    if not args.targets and not args.stack and not args.harness \
            and not args.determinism:
        parser.error(
            "nothing to analyze: give source targets, --stack, --harness, "
            "and/or --determinism"
        )
    try:
        findings, summaries = run(args)
    except ReproError as exc:
        print(f"analysis failed: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot read target: {exc}", file=sys.stderr)
        return 2
    render = render_json if args.fmt == "json" else render_text
    print(render(order_findings(findings), summaries))
    return 1 if _should_fail(findings, args.fail_on) else 0


if __name__ == "__main__":
    sys.exit(main())
