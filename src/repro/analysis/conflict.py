"""Static cache conflict-map analysis (Section 4's layout lottery as a lint).

The paper averages over "100 runs, each with a different random
placement in memory" precisely because, with a direct-mapped cache,
*where the linker put the code* decides the conflict-miss count.  This
module predicts that statically: given placed :class:`Region` objects
and a cache geometry, it computes per-set occupancy, reports which hot
regions alias, and flags layouts whose hot working set self-conflicts —
without running the simulator.

Two outcomes matter:

* the hot working set *fits* the cache but two hot regions still map to
  the same index — a layout bug a different placement would fix
  (``LDLP001``);
* the hot working set *exceeds* the cache — conflicts are structural,
  no placement can help (``LDLP002``, the paper's Table 1 situation).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..cache.hierarchy import CacheGeometry
from ..errors import LayoutError
from ..machine.program import Region
from .findings import Finding


@dataclass(frozen=True)
class SetConflict:
    """One cache set claimed by several hot regions."""

    set_index: int
    regions: tuple[str, ...]


@dataclass
class ConflictMap:
    """Per-cache-index occupancy of a set of placed regions."""

    geometry: CacheGeometry
    #: Region name -> distinct set indices it occupies.
    region_sets: dict[str, np.ndarray]
    #: occupancy[s] = number of analyzed regions touching set ``s``.
    occupancy: np.ndarray

    @property
    def num_sets(self) -> int:
        return self.geometry.num_sets

    @property
    def total_lines(self) -> int:
        """Cache lines the analyzed regions need simultaneously."""
        return int(sum(indices.size for indices in self.region_sets.values()))

    @property
    def max_occupancy(self) -> int:
        return int(self.occupancy.max()) if self.occupancy.size else 0

    @property
    def conflicting_sets(self) -> int:
        """Sets where two or more analyzed regions collide."""
        return int((self.occupancy > 1).sum())

    def utilization(self) -> float:
        """Fraction of cache sets touched by at least one region."""
        if not self.num_sets:
            return 0.0
        return float((self.occupancy > 0).sum()) / self.num_sets

    def aliases(self) -> list[SetConflict]:
        """Every multiply-occupied set with the regions that share it."""
        conflicts: list[SetConflict] = []
        contested = np.nonzero(self.occupancy > 1)[0]
        if not contested.size:
            return conflicts
        contested_set = set(int(index) for index in contested)
        owners: dict[int, list[str]] = {index: [] for index in contested_set}
        for name, indices in self.region_sets.items():
            for index in indices:
                index = int(index)
                if index in contested_set:
                    owners[index].append(name)
        for index in sorted(owners):
            conflicts.append(SetConflict(index, tuple(sorted(owners[index]))))
        return conflicts

    def aliased_pairs(self) -> dict[tuple[str, str], int]:
        """(region, region) -> number of cache sets they contest."""
        pairs: Counter[tuple[str, str]] = Counter()
        for conflict in self.aliases():
            names = conflict.regions
            for i, first in enumerate(names):
                for second in names[i + 1 :]:
                    pairs[(first, second)] += 1
        return dict(pairs)


def build_conflict_map(
    regions: Iterable[Region], geometry: CacheGeometry
) -> ConflictMap:
    """Map every placed region onto the cache's set index space."""
    region_sets: dict[str, np.ndarray] = {}
    occupancy = np.zeros(geometry.num_sets, dtype=np.int64)
    for region in regions:
        if not region.placed:
            raise LayoutError(
                f"region {region.name!r} must be placed before conflict "
                f"analysis (call a MemoryLayout placement first)"
            )
        indices = region.cache_set_indices(geometry.line_size, geometry.num_sets)
        region_sets[region.name] = indices
        occupancy[indices] += 1
    return ConflictMap(geometry, region_sets, occupancy)


def analyze_conflicts(
    regions: Sequence[Region],
    geometry: CacheGeometry,
    hot: Iterable[str] | None = None,
    target: str = "layout",
) -> tuple[ConflictMap, list[Finding]]:
    """Lint a placed layout against one direct-mapped cache.

    Parameters
    ----------
    regions:
        Placed regions (typically a :class:`Program`'s code regions).
    geometry:
        The cache they compete for.
    hot:
        Names of the regions that must be co-resident (the hot loop's
        working set).  Defaults to all given regions.
    target:
        Label used in findings (e.g. ``"stack:netbsd"``).
    """
    hot_names = set(hot) if hot is not None else {region.name for region in regions}
    known = {region.name for region in regions}
    unknown = hot_names - known
    if unknown:
        raise LayoutError(f"hot set names unknown regions: {sorted(unknown)}")
    hot_regions = [region for region in regions if region.name in hot_names]
    conflict_map = build_conflict_map(hot_regions, geometry)
    findings: list[Finding] = []

    if conflict_map.total_lines > geometry.num_sets:
        hot_bytes = sum(region.size for region in hot_regions)
        findings.append(
            Finding(
                "LDLP002",
                f"hot working set ({hot_bytes} B over "
                f"{conflict_map.total_lines} lines) exceeds the "
                f"{geometry.size} B cache ({geometry.num_sets} lines); "
                f"conflict misses are unavoidable at any placement "
                f"({hot_bytes / geometry.size:.1f}x the cache)",
                target,
                details={
                    "hot_bytes": hot_bytes,
                    "hot_lines": conflict_map.total_lines,
                    "cache_bytes": geometry.size,
                    "cache_lines": geometry.num_sets,
                    "regions": sorted(hot_names),
                },
            )
        )
        return conflict_map, findings

    # The hot set fits; any aliasing is a placement bug worth an error.
    for (first, second), sets in sorted(conflict_map.aliased_pairs().items()):
        findings.append(
            Finding(
                "LDLP001",
                f"hot regions {first!r} and {second!r} alias in {sets} "
                f"cache set(s) although the hot working set fits the "
                f"{geometry.size} B cache; each pass through both costs "
                f"~{2 * sets} avoidable conflict misses",
                target,
                details={
                    "regions": [first, second],
                    "conflicting_sets": sets,
                    "cache_bytes": geometry.size,
                },
            )
        )
    return conflict_map, findings
