"""DET rule family — whole-package determinism & parallel-purity lint.

Every result this reproduction ships rests on one invariant: runs are
seed-deterministic and byte-identical at any ``--jobs`` (the harness
contract).  The golden gate catches violations *after* they flake; this
pass catches the constructs that cause them at lint time, over the whole
``repro`` package:

* ``DET001`` unseeded-rng — RNG construction with no seed
  (``np.random.default_rng()``, ``random.Random()``) or any call into
  the process-global ``random.*`` / legacy ``numpy.random.*`` APIs,
  whose state is shared across modules and worker forks;
* ``DET002`` salted-hash — ``hash()`` or ``id()`` feeding computed
  values: ``str``/``bytes`` hashes are salted per interpreter
  (``PYTHONHASHSEED``) and ``id()`` is an allocation address;
* ``DET003`` wall-clock — reads of ``time.time``/``perf_counter``/
  ``datetime.now`` and friends; wall-clock values differ per run, so
  they may only feed measurement metadata, never results;
* ``DET004`` unordered-iteration — iterating a ``set``/``frozenset``
  of salted-hash elements (``str``/``bytes``/``Path``) into ordered
  output (a loop, ``list()``, ``join()``, float ``sum()``) without
  ``sorted()``: element order follows the per-interpreter hash salt;
* ``DET005`` impure-sweep-point — parallel purity of every declared
  :class:`~repro.harness.points.SweepPoint` function: its transitive
  import closure (reusing :mod:`~repro.analysis.harnesscheck`'s
  walker) must not write module-level state from function bodies
  (``global`` rebinding, mutating a module-level container), because
  point functions must be pure functions of their parameters to be
  cacheable and fan-out-safe.

Deliberate uses are suppressed inline, with a mandatory reason::

    start = time.perf_counter()  # det: allow[DET003] timing metadata only

A suppression with no reason does not suppress — the finding is
reported with a note instead, so "because I said so" never ships.
Everything here is purely static (AST + token scan); nothing is
imported or executed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

import repro

from ..errors import TraceError
from .findings import Finding
from .harnesscheck import PACKAGE, import_closure, module_path

#: Root directory of the analyzed package (``src/repro``).
PACKAGE_ROOT = Path(repro.__file__).resolve().parent

# ----------------------------------------------------------------------
# Inline suppressions

#: ``# det: allow[DET003] reason`` — rule list, then a mandatory reason.
_SUPPRESSION_RE = re.compile(
    r"#\s*det:\s*allow\[(?P<rules>[A-Z0-9,\s]*)\]\s*(?P<reason>.*?)\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# det: allow[...]`` comment."""

    line: int
    rules: frozenset[str]
    reason: str

    def covers(self, rule_id: str) -> bool:
        """True when this suppression names the rule *and* has a reason."""
        return bool(self.reason) and rule_id in self.rules


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """All ``det: allow`` comments in a source text, keyed by line."""
    suppressions: dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        suppressions[lineno] = Suppression(
            line=lineno, rules=rules, reason=match.group("reason")
        )
    return suppressions


def apply_suppressions(
    findings: list[Finding], suppressions: dict[int, Suppression]
) -> list[Finding]:
    """Drop findings a same-line suppression covers; flag reasonless ones."""
    kept: list[Finding] = []
    for finding in findings:
        suppression = suppressions.get(finding.line or 0)
        if suppression is None or finding.rule_id not in suppression.rules:
            kept.append(finding)
            continue
        if suppression.covers(finding.rule_id):
            continue
        finding.message += (
            " (a det: allow suppression on this line has no reason; "
            "reasons are mandatory, so it is ignored)"
        )
        finding.details["reasonless_suppression"] = True
        kept.append(finding)
    return kept


# ----------------------------------------------------------------------
# Import-alias resolution (shared by DET001/DET003)

#: Modules whose members the checker resolves through aliases.
_TRACKED_MODULES = ("numpy", "random", "time", "datetime")


def _build_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to canonical dotted paths for tracked modules.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Only the
    modules the DET rules care about are tracked.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root in _TRACKED_MODULES:
                    aliases[alias.asname or root] = (
                        alias.name if alias.asname else root
                    )
        elif isinstance(node, ast.ImportFrom) and not node.level:
            module = node.module or ""
            if module.split(".", 1)[0] not in _TRACKED_MODULES:
                continue
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{module}.{alias.name}"
    return aliases


def _canonical(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """The canonical dotted path of a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# DET001 — unseeded / process-global RNG

#: ``random`` module functions that draw from the process-global state.
_GLOBAL_RANDOM_FUNCS = frozenset(
    f"random.{name}"
    for name in (
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    )
)

#: Legacy ``numpy.random`` module-level functions (global RandomState).
_LEGACY_NUMPY_FUNCS = frozenset(
    f"numpy.random.{name}"
    for name in (
        "binomial", "bytes", "choice", "exponential", "normal",
        "permutation", "poisson", "rand", "randint", "randn", "random",
        "random_sample", "seed", "shuffle", "standard_normal", "uniform",
    )
)

# ----------------------------------------------------------------------
# DET003 — wall-clock reads

_WALL_CLOCKS = frozenset(
    {
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

# ----------------------------------------------------------------------
# DET004 — salted-set iteration order

#: Builtins that consume an iterable order-insensitively; iterating a
#: salted set *inside* them is deterministic again.
_ORDER_NEUTRAL_CALLS = frozenset(
    {"sorted", "min", "max", "len", "set", "frozenset", "any", "all"}
)

#: Builtins that materialize their argument's iteration order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "sum"})

#: Element annotations whose hashes are PYTHONHASHSEED-salted.
_SALTED_ELEMENT_TYPES = frozenset({"str", "bytes", "Path", "PurePath"})

_SET_TYPE_NAMES = frozenset({"set", "frozenset", "Set", "FrozenSet"})


def _annotation_is_salted_set(annotation: ast.expr | None) -> bool:
    """True for annotations like ``set[str]`` or ``frozenset[Path]``."""
    if not isinstance(annotation, ast.Subscript):
        return False
    base = annotation.value
    base_name = base.id if isinstance(base, ast.Name) else (
        base.attr if isinstance(base, ast.Attribute) else None
    )
    if base_name not in _SET_TYPE_NAMES:
        return False
    element = annotation.slice
    leaf = element.id if isinstance(element, ast.Name) else (
        element.attr if isinstance(element, ast.Attribute) else None
    )
    return leaf in _SALTED_ELEMENT_TYPES


def _has_salted_constant(elements: list[ast.expr]) -> bool:
    return any(
        isinstance(el, ast.Constant) and isinstance(el.value, (str, bytes))
        for el in elements
    )


class _SaltedSets:
    """Which expressions in one scope are sets with salted-hash elements."""

    def __init__(self) -> None:
        self.salted: set[str] = set()
        self.plain_sets: set[str] = set()

    def collect(self, body: list[ast.stmt], args: ast.arguments | None) -> None:
        """Pass 1: find salted-set names (assignments, annotations, adds).

        Runs to a fixed point: saltedness propagates through assignment
        chains (``both = left | right``) regardless of the order the
        scope walk visits statements in.
        """
        if args is not None:
            for arg in [
                *args.posonlyargs, *args.args, *args.kwonlyargs,
            ]:
                if _annotation_is_salted_set(arg.annotation):
                    self.salted.add(arg.arg)
        while True:
            before = (len(self.salted), len(self.plain_sets))
            self._collect_pass(body)
            if (len(self.salted), len(self.plain_sets)) == before:
                return

    def _collect_pass(self, body: list[ast.stmt]) -> None:
        for node in _walk_scope(body):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _annotation_is_salted_set(node.annotation):
                    self.salted.add(node.target.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if self.is_salted(node.value):
                    self.salted.add(name)
                elif _is_set_expr(node.value):
                    self.plain_sets.add(name)
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                if self.is_salted(node.value):
                    self.salted.add(node.target.id)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                # seen.add("name") promotes a tracked plain set to salted.
                receiver = node.func.value
                if (
                    node.func.attr in ("add", "update")
                    and isinstance(receiver, ast.Name)
                    and receiver.id in (self.plain_sets | self.salted)
                    and node.args
                    and (
                        _has_salted_constant(node.args)
                        or any(self.is_salted(arg) for arg in node.args)
                    )
                ):
                    self.salted.add(receiver.id)

    def is_salted(self, node: ast.expr) -> bool:
        """True when ``node`` statically evaluates to a salted set."""
        if isinstance(node, ast.Name):
            return node.id in self.salted
        if isinstance(node, ast.Set):
            return _has_salted_constant(node.elts)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset") and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, (str, bytes)):
                return True
            if isinstance(arg, (ast.List, ast.Tuple, ast.Set)):
                return _has_salted_constant(arg.elts)
            return self.is_salted(arg)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_salted(node.left) or self.is_salted(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_salted(node.body) or self.is_salted(node.orelse)
        return False


def _is_neutral(node: ast.AST) -> bool:
    """True when :meth:`_ModuleChecker._mark_order_neutral` marked it."""
    return getattr(node, "_det_order_neutral", False)


def _is_set_expr(node: ast.expr) -> bool:
    """A set literal or ``set()``/``frozenset()`` call of any element type."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _walk_scope(body: list[ast.stmt]):
    """Walk statements/expressions of one scope, skipping nested defs."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue  # nested scope: yielded for name binding, not entered
        stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# The per-module source checker (DET001–DET004)


class _ModuleChecker:
    """Runs the source-level DET rules over one parsed module."""

    def __init__(self, filename: str, tree: ast.Module) -> None:
        self.filename = filename
        self.tree = tree
        self.aliases = _build_aliases(tree)
        self.findings: list[Finding] = []
        #: Builtins shadowed anywhere in the module ('hash'/'id' as a
        #: variable or parameter) are not flagged as DET002.
        self.shadowed = self._shadowed_builtins()

    def _shadowed_builtins(self) -> set[str]:
        shadowed: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id in ("hash", "id"):
                    shadowed.add(node.id)
            elif isinstance(node, ast.arg) and node.arg in ("hash", "id"):
                shadowed.add(node.arg)
        return shadowed

    def _report(self, rule_id: str, message: str, line: int, **details: object) -> None:
        self.findings.append(
            Finding(rule_id, message, self.filename, line=line, details=details)
        )

    def run(self) -> list[Finding]:
        self._check_rng_and_clocks()
        self._check_salted_iteration()
        self.findings.sort(key=lambda f: (f.line or 0, f.rule_id, f.message))
        return self.findings

    # -- DET001 / DET002 / DET003 --------------------------------------

    def _check_rng_and_clocks(self) -> None:
        flagged_clock_lines: set[tuple[int, str]] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, (ast.Attribute, ast.Name)) and isinstance(
                node.ctx, ast.Load
            ):
                canonical = _canonical(node, self.aliases)
                if canonical in _WALL_CLOCKS:
                    site = (node.lineno, canonical)
                    if site in flagged_clock_lines:
                        continue
                    flagged_clock_lines.add(site)
                    self._report(
                        "DET003",
                        f"wall-clock read {canonical} — per-run values must "
                        f"not feed computed results; suppress with a reason "
                        f"if this only feeds measurement metadata",
                        node.lineno,
                        clock=canonical,
                    )

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("hash", "id") \
                and func.id not in self.shadowed:
            self._report(
                "DET002",
                f"builtin {func.id}() is PYTHONHASHSEED-salted (str/bytes) "
                f"or an allocation address — use a content hash "
                f"(zlib.crc32, hashlib) for computed values",
                node.lineno,
                builtin=func.id,
            )
            return
        canonical = _canonical(func, self.aliases)
        if canonical is None:
            return
        if canonical == "numpy.random.default_rng" and not node.args \
                and not node.keywords:
            self._report(
                "DET001",
                "numpy.random.default_rng() with no seed draws from OS "
                "entropy — pass an explicit seed or an injected generator",
                node.lineno,
                constructor=canonical,
            )
        elif canonical == "random.Random" and not node.args and not node.keywords:
            self._report(
                "DET001",
                "random.Random() with no seed draws from OS entropy — "
                "pass an explicit seed",
                node.lineno,
                constructor=canonical,
            )
        elif canonical in _GLOBAL_RANDOM_FUNCS:
            self._report(
                "DET001",
                f"{canonical}() uses the process-global random state, "
                f"shared across modules and worker forks — use a "
                f"per-instance seeded Generator",
                node.lineno,
                function=canonical,
            )
        elif canonical in _LEGACY_NUMPY_FUNCS:
            self._report(
                "DET001",
                f"{canonical}() uses numpy's legacy global RandomState — "
                f"use a per-instance np.random.default_rng(seed)",
                node.lineno,
                function=canonical,
            )

    # -- DET004 ---------------------------------------------------------

    def _check_salted_iteration(self) -> None:
        self._check_scope_iteration(self.tree.body, None)
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_scope_iteration(node.body, node.args)

    def _check_scope_iteration(
        self, body: list[ast.stmt], args: ast.arguments | None
    ) -> None:
        sets = _SaltedSets()
        sets.collect(body, args)
        if not sets.salted:
            return
        self._mark_order_neutral(body)
        for node in _walk_scope(body):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if sets.is_salted(node.iter) and not _is_neutral(node.iter):
                    self._flag_iteration(node.iter, "for loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if sets.is_salted(gen.iter) and not _is_neutral(node):
                        self._flag_iteration(gen.iter, "comprehension")
            elif isinstance(node, ast.Call):
                self._check_ordered_call(node, sets)

    def _mark_order_neutral(self, body: list[ast.stmt]) -> None:
        """Mark nodes whose iteration order an enclosing call discards.

        ``sorted(x for x in salted)`` and ``sorted(list(salted))`` are
        deterministic: the outer call re-establishes an order (or never
        had one), so the inner iteration is not flagged.
        """

        def absorb(node: ast.expr) -> None:
            node._det_order_neutral = True  # type: ignore[attr-defined]
            if isinstance(node, ast.Call):
                for arg in node.args:
                    absorb(arg)

        for node in _walk_scope(body):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id in _ORDER_NEUTRAL_CALLS:
                for arg in node.args:
                    absorb(arg)

    def _check_ordered_call(self, node: ast.Call, sets: _SaltedSets) -> None:
        if _is_neutral(node):
            return
        func = node.func
        consumer: str | None = None
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS:
            consumer = f"{func.id}()"
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            consumer = "str.join()"
        if consumer is None:
            return
        for arg in node.args:
            if sets.is_salted(arg) and not _is_neutral(arg):
                self._flag_iteration(arg, consumer)

    def _flag_iteration(self, node: ast.expr, consumer: str) -> None:
        self._report(
            "DET004",
            f"iteration order of a str/bytes set reaches ordered output "
            f"({consumer}) — set order follows the per-interpreter hash "
            f"salt; wrap the set in sorted()",
            node.lineno,
            consumer=consumer,
        )


# ----------------------------------------------------------------------
# Source-level entry points


def check_source(source: str, filename: str = "<string>") -> list[Finding]:
    """DET001–DET004 findings for one source text, suppressions applied."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise TraceError(f"cannot parse {filename}: {exc}") from exc
    findings = _ModuleChecker(filename, tree).run()
    return apply_suppressions(findings, parse_suppressions(source))


def check_det_file(path: str | Path) -> list[Finding]:
    """DET source findings for one Python file."""
    path = Path(path)
    return check_source(path.read_text(encoding="utf-8"), _display_path(path))


def _display_path(path: Path) -> str:
    """The path as reported in findings (relative to cwd when possible)."""
    resolved = path.resolve()
    try:
        return str(resolved.relative_to(Path.cwd()))
    except ValueError:
        return str(resolved)


def check_package(root: Path | None = None) -> list[Finding]:
    """DET001–DET004 over every ``.py`` file of the package tree."""
    root = Path(root) if root is not None else PACKAGE_ROOT
    findings: list[Finding] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(check_det_file(path))
    return findings


# ----------------------------------------------------------------------
# DET005 — parallel purity of sweep-point closures

#: Container methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "setdefault",
        "update", "__setitem__",
    }
)

_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _module_level_names(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(all module-level bindings, the mutable-container subset)."""
    bindings: set[str] = set()
    mutables: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            bindings.add(target.id)
            if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                                  ast.SetComp, ast.DictComp)):
                mutables.add(target.id)
            elif isinstance(value, ast.Call):
                func = value.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                if name in _MUTABLE_CONSTRUCTORS:
                    mutables.add(target.id)
    return bindings, mutables


@dataclass(frozen=True)
class StateWrite:
    """One module-level state write found inside a function body."""

    line: int
    name: str
    kind: str  # "global-write" | "container-mutation"
    function: str


def _local_bindings(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names the function binds locally (params + assignments)."""
    bound = {arg.arg for arg in [
        *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs,
        *( [func.args.vararg] if func.args.vararg else [] ),
        *( [func.args.kwarg] if func.args.kwarg else [] ),
    ]}
    for node in _walk_scope(func.body):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
    return bound


def module_state_writes(tree: ast.Module) -> list[StateWrite]:
    """Every write to module-level state from a function body.

    Two kinds: rebinding a module global (``global X`` + assignment) and
    in-place mutation of a module-level container (subscript store,
    ``del``, or a mutating method call).  Local shadows are respected:
    a function that binds the name itself (parameter or plain local) is
    not writing module state.
    """
    bindings, mutables = _module_level_names(tree)
    writes: list[StateWrite] = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        declared_global: set[str] = set()
        for node in _walk_scope(func.body):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        locals_bound = _local_bindings(func) - declared_global
        for node in _walk_scope(func.body):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared_global:
                        writes.append(StateWrite(
                            node.lineno, target.id, "global-write", func.name
                        ))
                    elif isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in mutables \
                            and target.value.id not in locals_bound:
                        writes.append(StateWrite(
                            node.lineno, target.value.id,
                            "container-mutation", func.name,
                        ))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in mutables \
                            and target.value.id not in locals_bound:
                        writes.append(StateWrite(
                            node.lineno, target.value.id,
                            "container-mutation", func.name,
                        ))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATING_METHODS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in mutables \
                    and node.func.value.id not in locals_bound:
                writes.append(StateWrite(
                    node.lineno, node.func.value.id,
                    "container-mutation", func.name,
                ))
    writes.sort(key=lambda w: (w.line, w.name))
    return writes


def check_parallel_purity() -> list[Finding]:
    """DET005 findings over every registered experiment's point closure."""
    from ..harness.points import SCALES
    from ..harness.registry import all_specs

    # Which experiments reach each closed-over module.
    reached_by: dict[str, list[str]] = {}
    for spec in all_specs():
        func_modules: set[str] = set()
        for scale in SCALES:
            try:
                points = spec.points_for(scale)
            except Exception:  # noqa: BLE001 — scale not defined by this spec
                continue
            for point in points:
                module, _, _ = point.func.partition(":")
                func_modules.add(module)
        closure: set[str] = set()
        for module in sorted(func_modules):
            closure |= import_closure(module)
        for module in sorted(closure):
            reached_by.setdefault(module, []).append(spec.name)

    findings: list[Finding] = []
    for module in sorted(reached_by):
        path = module_path(module)
        if path is None or module == PACKAGE:
            continue
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        module_findings: list[Finding] = []
        experiments = sorted(set(reached_by[module]))
        for write in module_state_writes(tree):
            module_findings.append(
                Finding(
                    rule_id="DET005",
                    message=(
                        f"{write.function}() {'rebinds module global' if write.kind == 'global-write' else 'mutates module-level container'} "
                        f"{write.name!r}, but {module} is in the import "
                        f"closure of sweep points for "
                        f"{', '.join(experiments)} — point functions must "
                        f"be pure to parallelize and cache safely"
                    ),
                    target=_display_path(path),
                    line=write.line,
                    details={
                        "module": module,
                        "name": write.name,
                        "kind": write.kind,
                        "function": write.function,
                        "experiments": experiments,
                    },
                )
            )
        findings.extend(
            apply_suppressions(module_findings, parse_suppressions(source))
        )
    return findings


def check_determinism() -> list[Finding]:
    """The full ``--determinism`` gate: package scan + parallel purity."""
    findings = check_package()
    findings.extend(check_parallel_purity())
    return findings
