"""HARN001 — sweep-point import closures vs declared cache sources.

The parallel harness caches every sweep point on disk, keyed by the
point function, its parameters, and a digest of the experiment's
declared ``sources`` modules (:class:`repro.harness.points.SweepSpec`).
The declaration is trust-based: if a point function transitively
imports a ``repro.*`` module the spec does *not* declare, editing that
module leaves the digest unchanged and ``regress`` happily serves
stale cached results — the nastiest kind of reproduction bug, because
everything still passes.

This checker closes the loop statically.  For each registered spec it

1. collects the modules named by every point's ``func`` across all
   scales,
2. walks each module's transitive ``repro.*`` import closure by parsing
   ASTs (absolute imports, relative imports at any level, and
   ``from pkg import submodule`` resolved against the package tree —
   nothing is executed or imported),
3. reports a :class:`~repro.analysis.findings.Finding` (rule
   ``HARN001``, ERROR) for every closed-over module no declared source
   covers.

A module ``m`` is covered by source ``s`` when ``m == s`` or ``m``
lives under the package ``s``.  The package root ``repro`` itself and
``repro.version`` are exempt: the root ``__init__`` is a thin lazy
wrapper and the version string is already part of the cache key.

One deliberate refinement keeps the closure honest instead of
everything-reaches-everything: importing a submodule executes every
ancestor package ``__init__``, and re-export hubs like
``repro.experiments.__init__`` eagerly import *every sibling* — which
would drag the whole codebase into every experiment's closure and make
the rule useless.  Ancestor ``__init__`` files that are pure re-export
hubs (docstring + imports + ``__all__`` only) are therefore treated as
inert: their imports are not followed and they need no declaration.
Any ``__init__`` reached through a real import edge (``from ..core
import BatchPolicy``), or containing actual logic, is followed in
full — its code demonstrably feeds the point result.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro

from ..errors import ConfigurationError
from ..harness.points import SCALES, SweepSpec
from .findings import Finding

#: The package every experiment lives under.
PACKAGE = "repro"

_ROOT = Path(repro.__file__).resolve().parent

#: Modules whose changes need not invalidate caches: the root
#: ``__init__`` only lazy-imports, and the version string is hashed
#: into every cache key independently of source digests.
IGNORED_MODULES = frozenset({PACKAGE, f"{PACKAGE}.version"})


def module_path(name: str) -> Path | None:
    """Resolve a dotted ``repro.*`` module name to its source file.

    Packages resolve to their ``__init__.py``; names that do not exist
    under the package tree resolve to ``None``.
    """
    if name == PACKAGE:
        return _ROOT / "__init__.py"
    if not name.startswith(PACKAGE + "."):
        return None
    candidate = _ROOT.joinpath(*name.split(".")[1:])
    package_init = candidate / "__init__.py"
    if package_init.is_file():
        return package_init
    module_file = candidate.with_suffix(".py")
    if module_file.is_file():
        return module_file
    return None


def _relative_base(importer: str, level: int) -> list[str] | None:
    """The package a level-``level`` relative import resolves against."""
    parts = importer.split(".")
    path = module_path(importer)
    if path is not None and path.name == "__init__.py":
        package = parts
    else:
        package = parts[:-1]
    if level - 1 >= len(package):
        return None
    return package[: len(package) - (level - 1)]


def imported_modules(importer: str, tree: ast.AST) -> set[str]:
    """Every ``repro.*`` module one file's imports name.

    Walks the whole AST, so lazy function-body imports count too — they
    still execute when the point function runs.  For ``from pkg import
    name``, ``name`` is kept as a module only when a matching file
    exists under the package tree (otherwise it is an attribute).
    """
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name == PACKAGE or name.startswith(PACKAGE + "."):
                    found.add(name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_base(importer, node.level)
                if base is None:
                    continue
                target_parts = base + (node.module.split(".") if node.module else [])
                target = ".".join(target_parts)
            else:
                target = node.module or ""
            if target != PACKAGE and not target.startswith(PACKAGE + "."):
                continue
            found.add(target)
            for alias in node.names:
                submodule = f"{target}.{alias.name}"
                if module_path(submodule) is not None:
                    found.add(submodule)
    return found


def _ancestors(name: str) -> list[str]:
    """Every enclosing package of a dotted name (importing a submodule
    executes every ancestor ``__init__`` too)."""
    parts = name.split(".")
    return [".".join(parts[:length]) for length in range(1, len(parts))]


def _is_reexport_hub(tree: ast.Module) -> bool:
    """True when a module is nothing but a re-export hub.

    A hub contains only a docstring, imports, and ``__all__``
    assignments — no functions, classes, or other logic whose behaviour
    a point result could depend on.
    """
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            continue
        if isinstance(node, ast.Assign) and all(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            continue
        return False
    return True


def import_closure(root_module: str) -> set[str]:
    """The transitive ``repro.*`` import closure of one module.

    Includes the root module and everything reachable through import
    edges, plus ancestor package ``__init__`` files that contain real
    logic (inert re-export hubs reached only as ancestors are skipped —
    see the module docstring).  Purely static (AST-based); nothing is
    executed.
    """
    closure: set[str] = set()
    inert_hubs: set[str] = set()
    queue: list[tuple[str, bool]] = [(root_module, False)]
    while queue:
        name, via_ancestor = queue.pop()
        if name in closure:
            continue
        path = module_path(name)
        if path is None:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        if via_ancestor and path.name == "__init__.py" and _is_reexport_hub(tree):
            inert_hubs.add(name)
            continue
        closure.add(name)
        inert_hubs.discard(name)
        for ancestor in _ancestors(name):
            if ancestor not in closure and ancestor not in inert_hubs:
                queue.append((ancestor, True))
        for dependency in imported_modules(name, tree):
            if dependency not in closure:
                queue.append((dependency, False))
    return closure


def _covered(module: str, sources: tuple[str, ...]) -> bool:
    """True when some declared source digests this module's file."""
    return any(
        module == source or module.startswith(source + ".")
        for source in sources
    )


def check_spec(spec: SweepSpec) -> list[Finding]:
    """HARN001 findings for one experiment's sweep spec."""
    func_modules: set[str] = set()
    for scale in SCALES:
        try:
            points = spec.points_for(scale)
        except (KeyError, ConfigurationError):
            # A scale this experiment does not define.
            continue
        for point in points:
            module, _, _ = point.func.partition(":")
            func_modules.add(module)
    closure: set[str] = set()
    for module in sorted(func_modules):
        closure |= import_closure(module)
    missing = sorted(
        module
        for module in closure
        if module not in IGNORED_MODULES and not _covered(module, spec.sources)
    )
    if not missing:
        return []
    return [
        Finding(
            rule_id="HARN001",
            message=(
                f"experiment {spec.name!r}: point functions transitively "
                f"import {module}, which no declared cache source covers "
                f"— edits to it would serve stale cached results "
                f"(declared sources: {', '.join(spec.sources)})"
            ),
            target=f"experiment:{spec.name}",
            details={
                "experiment": spec.name,
                "module": module,
                "sources": list(spec.sources),
            },
        )
        for module in missing
    ]


def check_dispatch_coverage() -> list[Finding]:
    """HARN002 findings: dispatch policies no multicore sweep exercises.

    The ``multicore`` experiment's golden gate only pins the behaviour
    of dispatch policies its sweep actually runs.  A policy registered
    in :data:`repro.core.dispatch.DISPATCH_POLICIES` but absent from
    every scale's sweep points could change behaviour without tripping
    any golden — so every registered policy must appear as the
    ``dispatch`` parameter of at least one point at some scale.
    """
    from ..core.dispatch import DISPATCH_POLICIES
    from ..harness.registry import get_spec

    spec = get_spec("multicore")
    exercised: set[str] = set()
    for scale in SCALES:
        try:
            points = spec.points_for(scale)
        except (KeyError, ConfigurationError):
            continue
        for point in points:
            name = point.params.get("dispatch")
            if name is not None:
                exercised.add(str(name))
    missing = sorted(set(DISPATCH_POLICIES) - exercised)
    return [
        Finding(
            rule_id="HARN002",
            message=(
                f"dispatch policy {name!r} is registered in "
                f"repro.core.dispatch.DISPATCH_POLICIES but exercised by "
                f"no multicore sweep point at any scale — its behaviour "
                f"is unpinned by the golden gate "
                f"(exercised: {', '.join(sorted(exercised)) or 'none'})"
            ),
            target="experiment:multicore",
            details={
                "policy": name,
                "exercised": sorted(exercised),
            },
        )
        for name in missing
    ]


def check_flow_org_coverage() -> list[Finding]:
    """HARN003 findings: flow-cache organizations no flows sweep runs.

    The mirror of HARN002 for the flow-lookup layer: every cache
    organization registered in
    :data:`repro.flows.lookup.FLOW_CACHE_ORGS` must appear as the
    ``organization`` parameter of at least one ``flows`` sweep point at
    some scale, or its replacement behaviour could change without
    tripping any golden.
    """
    from ..flows.lookup import FLOW_CACHE_ORGS
    from ..harness.registry import get_spec

    spec = get_spec("flows")
    exercised: set[str] = set()
    for scale in SCALES:
        try:
            points = spec.points_for(scale)
        except (KeyError, ConfigurationError):
            continue
        for point in points:
            name = point.params.get("organization")
            if name is not None:
                exercised.add(str(name))
    missing = sorted(set(FLOW_CACHE_ORGS) - exercised)
    return [
        Finding(
            rule_id="HARN003",
            message=(
                f"flow-cache organization {name!r} is registered in "
                f"repro.flows.lookup.FLOW_CACHE_ORGS but exercised by "
                f"no flows sweep point at any scale — its behaviour "
                f"is unpinned by the golden gate "
                f"(exercised: {', '.join(sorted(exercised)) or 'none'})"
            ),
            target="experiment:flows",
            details={
                "organization": name,
                "exercised": sorted(exercised),
            },
        )
        for name in missing
    ]


def check_framing_coverage() -> list[Finding]:
    """HARN004 findings: framing modes no gossip sweep point exercises.

    The wire-protocol twin of HARN002/HARN003: every framing mode
    registered in :data:`repro.gossip.wire.FRAMING_MODES` must appear
    as the ``framing`` parameter of at least one ``gossip`` sweep point
    at some scale, or its header layout could change without tripping
    any golden — and the session-vs-sessionless savings pin would
    silently stop comparing anything.
    """
    from ..gossip.wire import FRAMING_MODES
    from ..harness.registry import get_spec

    spec = get_spec("gossip")
    exercised: set[str] = set()
    for scale in SCALES:
        try:
            points = spec.points_for(scale)
        except (KeyError, ConfigurationError):
            continue
        for point in points:
            name = point.params.get("framing")
            if name is not None:
                exercised.add(str(name))
    missing = sorted(set(FRAMING_MODES) - exercised)
    return [
        Finding(
            rule_id="HARN004",
            message=(
                f"framing mode {name!r} is registered in "
                f"repro.gossip.wire.FRAMING_MODES but exercised by "
                f"no gossip sweep point at any scale — its wire layout "
                f"is unpinned by the golden gate "
                f"(exercised: {', '.join(sorted(exercised)) or 'none'})"
            ),
            target="experiment:gossip",
            details={
                "framing": name,
                "exercised": sorted(exercised),
            },
        )
        for name in missing
    ]


def check_all_specs() -> list[Finding]:
    """HARN findings across every registered experiment.

    HARN001 (undeclared cache sources) for each spec, plus HARN002
    (dispatch-policy sweep coverage) for the multicore experiment,
    HARN003 (flow-cache-organization sweep coverage) for the flows
    experiment, and HARN004 (framing-mode sweep coverage) for the
    gossip experiment.
    """
    from ..harness.registry import all_specs

    findings: list[Finding] = []
    for spec in all_specs():
        findings.extend(check_spec(spec))
    findings.extend(check_dispatch_coverage())
    findings.extend(check_flow_org_coverage())
    findings.extend(check_framing_coverage())
    return findings
