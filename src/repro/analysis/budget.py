"""Working-set budget checks (Table 1 arithmetic as a lint).

LDLP's benefit evaporates when the thing being batched no longer fits
the cache it is being batched *for*: a layer group whose combined code
exceeds the instruction cache refetches itself on every message of the
batch (Table 1's per-layer budgets are exactly what must fit), and a
batch whose messages outgrow the data cache evicts its own messages
between layers (Section 3.2's "as many messages as will fit" rule).
These checks catch both statically, from footprints alone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..cache.hierarchy import MachineSpec
from .findings import Finding

if TYPE_CHECKING:
    from ..core.scheduler import Scheduler

#: The paper's small-message size ("between 512 and 584 bytes depending
#: on the layer", Section 2.4); used when no message size is given.
DEFAULT_MESSAGE_BYTES = 552

#: Data-cache bytes reserved for per-layer private data (Section 3.2's
#: batching arithmetic reserves one layer's data working set).
DEFAULT_LAYER_DATA_RESERVE = 256


def check_group_budgets(
    code_sizes: Sequence[int],
    groups: Sequence[Sequence[int]],
    icache_bytes: int,
    layer_names: Sequence[str] | None = None,
    target: str = "scheduler",
) -> list[Finding]:
    """Flag groups whose combined code footprint exceeds the I-cache.

    ``code_sizes[i]`` is layer ``i``'s code working set in bytes;
    ``groups`` is the scheduler's grouping (indices into the stack).
    """
    names = (
        list(layer_names)
        if layer_names is not None
        else [f"layer[{index}]" for index in range(len(code_sizes))]
    )
    findings: list[Finding] = []
    for position, group in enumerate(groups):
        members = [index for index in group if 0 <= index < len(code_sizes)]
        total = sum(code_sizes[index] for index in members)
        if total > icache_bytes:
            member_names = [names[index] for index in members]
            findings.append(
                Finding(
                    "LDLP003",
                    f"group {position} ({', '.join(member_names)}) needs "
                    f"{total} B of code against the {icache_bytes} B "
                    f"instruction cache; the group refetches its own code "
                    f"every message and the LDLP batching gain is lost",
                    target,
                    details={
                        "group": position,
                        "members": member_names,
                        "code_bytes": total,
                        "icache_bytes": icache_bytes,
                        "overflow_bytes": total - icache_bytes,
                    },
                )
            )
    return findings


def check_batch_budget(
    max_batch: int,
    dcache_bytes: int,
    message_bytes: int = DEFAULT_MESSAGE_BYTES,
    layer_data_reserve: int = DEFAULT_LAYER_DATA_RESERVE,
    target: str = "scheduler",
) -> list[Finding]:
    """Flag an LDLP batch cap whose data footprint overruns the D-cache."""
    footprint = max_batch * message_bytes + layer_data_reserve
    if footprint <= dcache_bytes:
        return []
    fitting = max(1, (dcache_bytes - layer_data_reserve) // message_bytes)
    return [
        Finding(
            "LDLP004",
            f"batch cap {max_batch} x {message_bytes} B messages "
            f"(+{layer_data_reserve} B layer data) needs {footprint} B "
            f"against the {dcache_bytes} B data cache; messages evict "
            f"each other between layers — cap batches at {fitting}",
            target,
            details={
                "max_batch": max_batch,
                "message_bytes": message_bytes,
                "layer_data_reserve": layer_data_reserve,
                "footprint_bytes": footprint,
                "dcache_bytes": dcache_bytes,
                "recommended_batch": fitting,
            },
        )
    ]


def check_scheduler_budgets(
    scheduler: "Scheduler",
    spec: MachineSpec | None = None,
    message_bytes: int = DEFAULT_MESSAGE_BYTES,
    target: str | None = None,
) -> list[Finding]:
    """Budget-check a live scheduler instance without running it.

    Uses the scheduler's own :meth:`describe_config` hook: per-layer
    footprints, the batch cap, and (for the grouped scheduler) the
    grouping.  The machine comes from the scheduler's binding when
    bound, else ``spec``, else the paper's default machine.
    """
    if spec is None:
        binding = getattr(scheduler, "binding", None)
        spec = binding.spec if binding is not None else MachineSpec()
    config = scheduler.describe_config()
    label = target or f"scheduler:{config['scheduler']}"
    code_sizes = [int(layer["code_bytes"]) for layer in config["layers"]]
    layer_names = [str(layer["name"]) for layer in config["layers"]]
    # Ungrouped schedulers: every layer is its own group (a single
    # oversized layer is still a budget violation).
    groups = config.get("groups") or [[index] for index in range(len(code_sizes))]
    findings = check_group_budgets(
        code_sizes, groups, spec.icache.size, layer_names, label
    )
    if "batch_limit" in config:
        # Reserve room for the largest layer's private data working set.
        reserve = max(
            [int(layer["data_bytes"]) for layer in config["layers"]]
            + [DEFAULT_LAYER_DATA_RESERVE]
        )
        findings.extend(
            check_batch_budget(
                int(config["batch_limit"]),
                spec.dcache.size,
                message_bytes,
                reserve,
                label,
            )
        )
    return findings


def check_netbsd_group_budgets(
    layer_groups: Sequence[Sequence[str]],
    icache_bytes: int,
    target: str = "stack:netbsd",
) -> list[Finding]:
    """Budget-check a grouping of the NetBSD Table-1 layers.

    ``layer_groups`` holds Table-1 layer names (e.g. ``[["Ethernet",
    "IP"], ["TCP"]]``); each group's summed catalog code bytes must fit
    the instruction cache for grouped LDLP to pay off.
    """
    from ..netbsd.functions import layer_code_sizes

    sizes = layer_code_sizes()
    names = list(sizes)
    indices = {name: position for position, name in enumerate(names)}
    index_groups = [
        [indices[name] for name in group if name in indices]
        for group in layer_groups
    ]
    return check_group_budgets(
        [sizes[name] for name in names], index_groups, icache_bytes, names, target
    )
