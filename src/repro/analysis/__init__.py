"""Static analysis for the LDLP reproduction (``python -m repro.analysis``).

Four analyzers over the repo's own models and sources, each reporting
:class:`~repro.analysis.findings.Finding` objects with stable rule ids:

* :mod:`~repro.analysis.conflict` — per-cache-index occupancy of placed
  code regions; aliasing hot sets (``LDLP001``/``LDLP002``);
* :mod:`~repro.analysis.budget` — Table-1 working-set budgets for layer
  groups and LDLP batches (``LDLP003``/``LDLP004``);
* :mod:`~repro.analysis.schedcheck` — scheduler-configuration validity
  (``SCHED001``–``SCHED004``);
* :mod:`~repro.analysis.mbuflint` — AST lint of mbuf alloc/free
  lifecycles in Python sources (``MBUF001``–``MBUF003``);
* :mod:`~repro.analysis.harnesscheck` — sweep-point import closures vs
  declared cache sources (``HARN001``);
* :mod:`~repro.analysis.detcheck` — whole-package determinism and
  sweep-point parallel purity (``DET001``–``DET005``), with inline
  ``# det: allow[RULE] reason`` suppressions.

:mod:`~repro.analysis.stacks` wires them into whole-stack pipelines and
:mod:`~repro.analysis.cli` exposes everything as a CI-gateable command.
"""

from .budget import (
    check_batch_budget,
    check_group_budgets,
    check_netbsd_group_budgets,
    check_scheduler_budgets,
)
from .cli import main
from .conflict import ConflictMap, SetConflict, analyze_conflicts, build_conflict_map
from .detcheck import (
    check_determinism,
    check_package,
    check_parallel_purity,
    check_source,
)
from .findings import (
    RULES,
    Finding,
    Rule,
    Severity,
    count_by_severity,
    worst_severity,
)
from .mbuflint import lint_file, lint_paths, lint_source
from .reporters import finding_to_dict, order_findings, render_json, render_text
from .schedcheck import check_group_partition, check_scheduler_config
from .stacks import (
    STACK_NAMES,
    StackAnalysis,
    analyze_netbsd_stack,
    analyze_stack,
    analyze_synthetic_stack,
    check_scheduler_conflicts,
)

__all__ = [
    "RULES",
    "STACK_NAMES",
    "ConflictMap",
    "Finding",
    "Rule",
    "SetConflict",
    "Severity",
    "StackAnalysis",
    "analyze_conflicts",
    "analyze_netbsd_stack",
    "analyze_stack",
    "analyze_synthetic_stack",
    "build_conflict_map",
    "check_batch_budget",
    "check_determinism",
    "check_group_budgets",
    "check_group_partition",
    "check_netbsd_group_budgets",
    "check_package",
    "check_parallel_purity",
    "check_scheduler_budgets",
    "check_scheduler_config",
    "check_scheduler_conflicts",
    "check_source",
    "count_by_severity",
    "finding_to_dict",
    "order_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
    "worst_severity",
]
