"""AST-based mbuf lifecycle linter (the MBUF* rules).

LDLP "requires a buffer management scheme where lower layers hand off
their buffers to the higher layers, and don't destroy them after
calling the upper layers" (Section 3.2) — which makes mbuf ownership
easy to get wrong: free a chain a higher layer still holds and you get
a use-after-free; free it on two paths and you corrupt the free list;
forget it and the pool drains.  This linter walks Python source
statically and flags ``MbufPool.alloc`` / ``free`` / ``free_chain``
misuse per function scope:

* ``MBUF001`` double-free — the same variable freed twice;
* ``MBUF002`` use-after-free — any use of a variable after its free;
* ``MBUF003`` mbuf-leak — an allocation that is neither freed nor
  handed off (returned, stored, passed on) before the scope ends.

The analysis is intentionally lint-grade: statements are visited in
source order (branches are not path-sensitive), and any hand-off of a
buffer to other code counts as an ownership transfer, so real stacks —
which pass mbufs up the stack constantly — stay quiet.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from ..errors import TraceError
from .findings import Finding

#: Method names that return an mbuf to a pool.
FREE_METHODS = ("free", "free_chain")


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


@dataclass
class _VarState:
    """Lifecycle of one mbuf-holding variable within a scope."""

    alloc_line: int | None  # None when first seen at a free (parameter)
    freed_line: int | None = None
    escaped: bool = False

    @property
    def live(self) -> bool:
        return self.freed_line is None


class _ScopeLinter:
    """Lints one scope (module body or function body) linearly."""

    def __init__(self, filename: str, scope_name: str) -> None:
        self.filename = filename
        self.scope_name = scope_name
        self.pools: set[str] = set()
        self.vars: dict[str, _VarState] = {}
        self.findings: list[Finding] = []

    # -- pool / call classification ------------------------------------

    def _is_pool(self, receiver: str | None) -> bool:
        if receiver is None:
            return False
        if receiver in self.pools:
            return True
        return "pool" in receiver.rsplit(".", 1)[-1].lower()

    def _classify_call(self, call: ast.Call) -> tuple[str, str] | None:
        """("alloc"|"free"|"free_chain"|"ctor", receiver) or None."""
        func = call.func
        name = _dotted_name(func)
        if name is not None and name.rsplit(".", 1)[-1] == "MbufPool":
            return ("ctor", name)
        if isinstance(func, ast.Attribute):
            receiver = _dotted_name(func.value)
            if func.attr == "alloc" and self._is_pool(receiver):
                return ("alloc", receiver or "")
            if func.attr in FREE_METHODS and self._is_pool(receiver):
                return (func.attr, receiver or "")
        return None

    # -- events ---------------------------------------------------------

    def _report(self, rule_id: str, message: str, line: int, **details: object) -> None:
        details.setdefault("scope", self.scope_name)
        self.findings.append(
            Finding(rule_id, message, self.filename, line=line, details=details)
        )

    def _free_var(self, name: str, method: str, line: int) -> None:
        state = self.vars.get(name)
        if state is None:
            # First sighting (e.g. a parameter): track so a second free
            # in this scope is still caught.
            self.vars[name] = _VarState(alloc_line=None, freed_line=line)
            return
        if state.freed_line is not None:
            self._report(
                "MBUF001",
                f"{name!r} freed again with {method}() — already freed at "
                f"line {state.freed_line}",
                line,
                variable=name,
                first_free_line=state.freed_line,
            )
            return
        state.freed_line = line

    def _use_var(self, name: str, line: int, escaping: bool) -> None:
        state = self.vars.get(name)
        if state is None:
            return
        if state.freed_line is not None:
            self._report(
                "MBUF002",
                f"{name!r} used after being freed at line {state.freed_line}",
                line,
                variable=name,
                freed_line=state.freed_line,
            )
            return
        if escaping:
            state.escaped = True

    # -- expression scan ------------------------------------------------

    def _scan(self, node: ast.expr | None, escaping: bool) -> None:
        """Scan an expression; ``escaping`` marks ownership-transfer spots."""
        if node is None:
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                self._use_var(node.id, node.lineno, escaping)
            return
        if isinstance(node, ast.Call):
            kind = self._classify_call(node)
            if kind is not None and kind[0] in FREE_METHODS:
                method = kind[0]
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        self._free_var(arg.id, method, arg.lineno)
                    else:
                        self._scan(arg, escaping=False)
                for keyword in node.keywords:
                    self._scan(keyword.value, escaping=False)
                return
            if isinstance(node.func, ast.Attribute):
                # Method call: the receiver is a plain use, not a hand-off.
                self._scan(node.func.value, escaping=False)
            else:
                self._scan(node.func, escaping=False)
            # Passing an mbuf to any other callable transfers ownership.
            for arg in node.args:
                self._scan(arg, escaping=True)
            for keyword in node.keywords:
                self._scan(keyword.value, escaping=True)
            return
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._scan(element, escaping=True)
            return
        if isinstance(node, ast.Dict):
            for key in node.keys:
                self._scan(key, escaping=True)
            for value in node.values:
                self._scan(value, escaping=True)
            return
        if isinstance(node, (ast.Lambda, ast.ListComp, ast.SetComp,
                             ast.DictComp, ast.GeneratorExp)):
            return  # separate (unlinted) scope; stay conservative
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan(child, escaping=False)

    # -- statement walk --------------------------------------------------

    def run(self, body: list[ast.stmt]) -> list[Finding]:
        self._visit_block(body)
        for name, state in self.vars.items():
            if state.alloc_line is not None and state.live and not state.escaped:
                self._report(
                    "MBUF003",
                    f"{name!r} allocated here is never freed or handed off "
                    f"before the end of {self.scope_name}",
                    state.alloc_line,
                    variable=name,
                )
        return self.findings

    def _visit_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are linted separately
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._visit_assign(stmt)
            return
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Call):
                kind = self._classify_call(stmt.value)
                if kind is not None and kind[0] == "alloc":
                    self._report(
                        "MBUF003",
                        "alloc() result discarded — the mbuf can never be "
                        "freed",
                        stmt.lineno,
                    )
                    for arg in stmt.value.args:
                        self._scan(arg, escaping=False)
                    return
            self._scan(stmt.value, escaping=False)
            return
        if isinstance(stmt, ast.Return):
            self._scan(stmt.value, escaping=True)
            return
        if isinstance(stmt, ast.Raise):
            self._scan(stmt.exc, escaping=True)
            self._scan(stmt.cause, escaping=True)
            return
        if isinstance(stmt, ast.If):
            self._scan(stmt.test, escaping=False)
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan(stmt.iter, escaping=False)
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._scan(stmt.test, escaping=False)
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan(item.context_expr, escaping=False)
            self._visit_block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._visit_block(stmt.body)
            for handler in stmt.handlers:
                self._visit_block(handler.body)
            self._visit_block(stmt.orelse)
            self._visit_block(stmt.finalbody)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan(stmt.value, escaping=False)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan(child, escaping=False)

    def _visit_assign(self, stmt: ast.Assign | ast.AnnAssign) -> None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        single_name = (
            targets[0].id
            if len(targets) == 1 and isinstance(targets[0], ast.Name)
            else None
        )
        if isinstance(value, ast.Call):
            kind = self._classify_call(value)
            if kind is not None:
                for arg in value.args:
                    self._scan(arg, escaping=False)
                for keyword in value.keywords:
                    self._scan(keyword.value, escaping=False)
                if kind[0] == "ctor" and single_name is not None:
                    self.pools.add(single_name)
                    return
                if kind[0] == "alloc":
                    if single_name is None:
                        return  # stored straight into a structure: handed off
                    previous = self.vars.get(single_name)
                    if previous is not None and previous.live \
                            and previous.alloc_line is not None \
                            and not previous.escaped:
                        self._report(
                            "MBUF003",
                            f"{single_name!r} reassigned while still holding "
                            f"the mbuf allocated at line {previous.alloc_line}"
                            f" — the old mbuf leaks",
                            stmt.lineno,
                            variable=single_name,
                            previous_alloc_line=previous.alloc_line,
                        )
                    self.vars[single_name] = _VarState(alloc_line=stmt.lineno)
                    return
                # free/free_chain used as an assignment RHS (rare): the
                # argument handling above in _scan covers Expr form; do
                # it here too.
                return
        # Generic assignment: scan the value.  Assigning a tracked mbuf
        # to *anything* (alias, attribute, container slot) hands it off.
        self._scan(value, escaping=True)
        # Rebinding a tracked name to something else forgets the old
        # binding; if it was live and unshared, that is a leak.
        if single_name is not None and not isinstance(value, ast.Call):
            previous = self.vars.get(single_name)
            if previous is not None:
                if previous.live and previous.alloc_line is not None \
                        and not previous.escaped:
                    self._report(
                        "MBUF003",
                        f"{single_name!r} reassigned while still holding the "
                        f"mbuf allocated at line {previous.alloc_line} — the "
                        f"old mbuf leaks",
                        stmt.lineno,
                        variable=single_name,
                        previous_alloc_line=previous.alloc_line,
                    )
                del self.vars[single_name]
        # Attribute/subscript targets load their base objects.
        for tgt in targets:
            if isinstance(tgt, (ast.Attribute, ast.Subscript)):
                self._scan(tgt.value, escaping=False)


def lint_source(source: str, filename: str = "<string>") -> list[Finding]:
    """Lint Python source text; returns MBUF* findings."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise TraceError(f"cannot parse {filename}: {exc}") from exc
    findings: list[Finding] = []
    findings.extend(_ScopeLinter(filename, "<module>").run(tree.body))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(
                _ScopeLinter(filename, f"{node.name}()").run(node.body)
            )
    findings.sort(key=lambda finding: (finding.line or 0, finding.rule_id))
    return findings


def lint_file(path: str | Path) -> list[Finding]:
    """Lint one Python file."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: list[str | Path]) -> list[Finding]:
    """Lint files and directories (recursing into ``*.py``)."""
    findings: list[Finding] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                findings.extend(lint_file(child))
        else:
            findings.extend(lint_file(path))
    return findings
