"""Whole-stack analysis pipelines for the two modelled stacks.

These glue the individual checks together against real configurations:

* the Section-4 **synthetic** five-layer stack, built and placed exactly
  as the simulator builds it (same schedulers, same
  :class:`~repro.core.binding.MachineBinding` placement), then linted —
  group partition, working-set budgets, and per-group conflict maps;
* the Section-2 **netbsd** receive path: the Figure-1 function catalog
  placed in memory, with the traced hot set checked against the
  instruction cache and the Table-1 layers checked against the
  per-group code budget.

The synthetic stack is expected to lint clean (the paper chose its
parameters so each layer fits the cache); the NetBSD stack is expected
to warn (its ~30 KB hot path cannot fit the 8 KB cache — the paper's
motivating observation), which is why warnings do not fail CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cache.hierarchy import MachineSpec
from ..core.binding import MachineBinding
from ..core.scheduler import GroupedLDLPScheduler, Scheduler
from ..errors import ConfigurationError
from ..machine.layout import MemoryLayout
from .budget import check_netbsd_group_budgets, check_scheduler_budgets
from .conflict import analyze_conflicts
from .findings import Finding
from .schedcheck import check_scheduler_config

#: Names accepted by :func:`analyze_stack` (and the CLI's ``--stack``).
STACK_NAMES = ("synthetic", "netbsd")


@dataclass
class StackAnalysis:
    """Outcome of one whole-stack analysis run."""

    name: str
    summary: dict[str, object] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)


def check_scheduler_conflicts(
    scheduler: Scheduler, target: str = "scheduler"
) -> list[Finding]:
    """Conflict-map every group of a machine-bound scheduler.

    LDLP's locality claim is per *group*: while a group's queue drains,
    only that group's code is hot, so each group's placed code regions
    are analyzed as an independent hot set against the I-cache.
    """
    binding = scheduler.binding
    if binding is None or not binding.bound:
        raise ConfigurationError(
            "conflict analysis needs a machine-bound scheduler (the code "
            "must be placed somewhere to have cache indices)"
        )
    config = scheduler.describe_config()
    groups = config.get("groups") or [
        [index] for index in range(len(scheduler.layers))
    ]
    findings: list[Finding] = []
    for position, group in enumerate(groups):
        regions = [
            binding.placed_layer(scheduler.layers[index].name).code_region
            for index in group
            if 0 <= index < len(scheduler.layers)
        ]
        if not regions:
            continue
        _, group_findings = analyze_conflicts(
            regions, binding.spec.icache, target=f"{target}:group{position}"
        )
        findings.extend(group_findings)
    return findings


def analyze_synthetic_stack(
    seed: int = 0, placement: str = "random"
) -> StackAnalysis:
    """Lint the Section-4 synthetic benchmark configuration.

    Builds the grouped LDLP scheduler over the paper's five 6 KB layers
    with the same placement machinery the simulator uses, then runs the
    scheduler-config, budget, and per-group conflict checks.
    """
    from ..sim.runner import build_paper_stack

    target = "stack:synthetic"
    layers = build_paper_stack()
    binding = MachineBinding(
        rng=seed, random_placement=(placement == "random")
    )
    scheduler = GroupedLDLPScheduler(layers, binding)
    findings = check_scheduler_config(scheduler, target=target)
    findings.extend(check_scheduler_budgets(scheduler, target=target))
    findings.extend(check_scheduler_conflicts(scheduler, target=target))
    config = scheduler.describe_config()
    return StackAnalysis(
        name="synthetic",
        summary={
            "scheduler": config["scheduler"],
            "layers": len(layers),
            "groups": config["groups"],
            "batch_limit": config["batch_limit"],
            "icache": binding.spec.icache.describe(),
            "dcache": binding.spec.dcache.describe(),
            "placement": placement,
            "seed": seed,
        },
        findings=findings,
    )


def analyze_netbsd_stack(
    seed: int = 0, placement: str = "random"
) -> StackAnalysis:
    """Lint the NetBSD receive path's static layout (Sections 2 and 4).

    Places the Figure-1 function catalog, then checks (a) the traced
    hot working set against the instruction cache — reproducing the
    paper's "working sets are much larger than the caches" finding as a
    deterministic ``LDLP002`` — and (b) each Table-1 layer as a
    candidate LDLP group against the per-group code budget.
    """
    from ..netbsd.functions import ALL_LAYERS, catalog_program
    from ..netbsd.receive_path import hot_function_names

    target = "stack:netbsd"
    spec = MachineSpec()
    program = catalog_program()
    layout = MemoryLayout(
        line_size=spec.icache.line_size, rng=np.random.default_rng(seed)
    )
    regions = program.code_regions()
    if placement == "random":
        layout.place_all_random(regions)
    else:
        layout.place_all_sequential(regions)
    hot = [name for name in hot_function_names()]
    conflict_map, findings = analyze_conflicts(
        regions, spec.icache, hot=hot, target=target
    )
    findings.extend(
        check_netbsd_group_budgets(
            [[layer] for layer in ALL_LAYERS], spec.icache.size, target=target
        )
    )
    return StackAnalysis(
        name="netbsd",
        summary={
            "functions": len(regions),
            "hot_functions": len(hot),
            "hot_lines": conflict_map.total_lines,
            "cache_lines": conflict_map.num_sets,
            "cache_utilization": round(conflict_map.utilization(), 3),
            "max_set_occupancy": conflict_map.max_occupancy,
            "conflicting_sets": conflict_map.conflicting_sets,
            "icache": spec.icache.describe(),
            "placement": placement,
            "seed": seed,
        },
        findings=findings,
    )


def analyze_stack(
    name: str, seed: int = 0, placement: str = "random"
) -> StackAnalysis:
    """Dispatch to one of the named stack pipelines."""
    if name == "synthetic":
        return analyze_synthetic_stack(seed=seed, placement=placement)
    if name == "netbsd":
        return analyze_netbsd_stack(seed=seed, placement=placement)
    raise ConfigurationError(
        f"unknown stack {name!r}; expected one of {STACK_NAMES}"
    )
