"""Findings, rules, and severities — the vocabulary of ``repro.analysis``.

Every check in the analyzer reports :class:`Finding` objects tagged with
a stable rule id (``LDLP001``, ``SCHED002``, ``MBUF001``...), so CI can
gate on specific rules and reports can link each finding back to the
paper section it enforces.  The registry in :data:`RULES` is the single
source of truth for ids, default severities, and paper cross-references;
DESIGN.md renders the same table for humans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError


class Severity(enum.Enum):
    """How bad a finding is; drives the CI gate's exit code."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    name: str
    severity: Severity
    paper_section: str
    summary: str


#: The rule registry.  Ids are grouped by subsystem: LDLP* for cache /
#: working-set checks, SCHED* for scheduler-configuration checks, MBUF*
#: for the mbuf-lifecycle linter, HARN* for harness cache-dependency
#: checks, DET* for the determinism / parallel-purity analyzer.
RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "LDLP001",
            "conflict-overflow",
            Severity.ERROR,
            "Section 4",
            "Two hot regions alias at the same direct-mapped cache index "
            "even though the hot working set fits the cache; a different "
            "placement would avoid the conflict misses.",
        ),
        Rule(
            "LDLP002",
            "working-set-overflow",
            Severity.WARNING,
            "Section 2, Table 1",
            "The hot working set exceeds cache capacity, so conflict "
            "misses are unavoidable regardless of placement (the paper's "
            "~30 KB path vs the 8 KB primary cache).",
        ),
        Rule(
            "LDLP003",
            "group-footprint-overflow",
            Severity.WARNING,
            "Section 5, Table 1",
            "A scheduler group's combined code footprint exceeds the "
            "instruction cache, nullifying the LDLP benefit within the "
            "group.",
        ),
        Rule(
            "LDLP004",
            "batch-footprint-overflow",
            Severity.WARNING,
            "Section 3.2",
            "The LDLP batch cap times the typical message size exceeds "
            "the data cache; batched messages evict each other between "
            "layers.",
        ),
        Rule(
            "SCHED001",
            "group-overlap",
            Severity.ERROR,
            "Section 3.2",
            "A layer index appears in more than one scheduler group; the "
            "layer would process some messages twice.",
        ),
        Rule(
            "SCHED002",
            "unreachable-layer",
            Severity.ERROR,
            "Section 3.2",
            "A layer (or group) no message can ever reach: missing from "
            "every group, out of range, or an empty group.",
        ),
        Rule(
            "SCHED003",
            "completion-order-hazard",
            Severity.ERROR,
            "Section 3.2",
            "Groups list layers out of stack order, so messages would "
            "complete out of order or be routed backwards.",
        ),
        Rule(
            "SCHED004",
            "flush-ignored",
            Severity.WARNING,
            "Section 3.2",
            "A layer coalesces messages (overrides flush) under a "
            "scheduler that never calls flush; held messages would be "
            "stranded.",
        ),
        Rule(
            "MBUF001",
            "double-free",
            Severity.ERROR,
            "Section 3.2",
            "An mbuf (or chain) is returned to its pool twice.",
        ),
        Rule(
            "MBUF002",
            "use-after-free",
            Severity.ERROR,
            "Section 3.2",
            "An mbuf variable is used after being returned to its pool.",
        ),
        Rule(
            "HARN001",
            "undeclared-cache-source",
            Severity.ERROR,
            "Reproduction methodology",
            "A sweep point function's transitive repro.* import closure "
            "reaches a module not covered by the experiment's declared "
            "cache sources; editing that module would not invalidate "
            "cached results (stale cache hits).",
        ),
        Rule(
            "HARN002",
            "unexercised-dispatch-policy",
            Severity.ERROR,
            "Reproduction methodology",
            "A dispatch policy registered in repro.core.dispatch is not "
            "exercised by any multicore sweep point at any scale; its "
            "behaviour would drift unpinned by the golden gate.",
        ),
        Rule(
            "HARN003",
            "unexercised-flow-cache-organization",
            Severity.ERROR,
            "Reproduction methodology",
            "A flow-lookup cache organization registered in "
            "repro.flows.lookup is not exercised by any flows sweep "
            "point at any scale; its behaviour would drift unpinned by "
            "the golden gate.",
        ),
        Rule(
            "HARN004",
            "unexercised-framing-mode",
            Severity.ERROR,
            "Reproduction methodology",
            "A gossip framing mode registered in repro.gossip.wire is "
            "not exercised by any gossip sweep point at any scale; its "
            "wire layout would drift unpinned by the golden gate.",
        ),
        Rule(
            "MBUF003",
            "mbuf-leak",
            Severity.WARNING,
            "Section 3.2",
            "An allocated mbuf is neither freed nor handed off before "
            "its scope ends.",
        ),
        Rule(
            "DET001",
            "unseeded-rng",
            Severity.ERROR,
            "Reproduction methodology",
            "RNG constructed without a seed (default_rng(), "
            "random.Random()) or a call into the process-global "
            "random / legacy numpy.random state; results would differ "
            "per run and per worker fork.",
        ),
        Rule(
            "DET002",
            "salted-hash",
            Severity.ERROR,
            "Reproduction methodology",
            "Builtin hash() (PYTHONHASHSEED-salted for str/bytes) or "
            "id() (an allocation address) feeding a computed value; "
            "use a content hash instead.",
        ),
        Rule(
            "DET003",
            "wall-clock",
            Severity.ERROR,
            "Reproduction methodology",
            "Wall-clock read (time.time, perf_counter, datetime.now) "
            "in analyzed code; per-run timestamps may only feed "
            "measurement metadata, via a reason-carrying suppression.",
        ),
        Rule(
            "DET004",
            "unordered-iteration",
            Severity.ERROR,
            "Reproduction methodology",
            "Iteration over a set of salted-hash elements (str/bytes/"
            "Path) flowing into ordered output without sorted(); "
            "element order follows the per-interpreter hash salt.",
        ),
        Rule(
            "DET005",
            "impure-sweep-point",
            Severity.ERROR,
            "Reproduction methodology",
            "A module in a declared sweep point's import closure "
            "writes module-level state from a function body; point "
            "functions must be pure functions of their parameters to "
            "cache and parallelize safely.",
        ),
    )
}


@dataclass
class Finding:
    """One analyzer result.

    Attributes
    ----------
    rule_id:
        Key into :data:`RULES`.
    message:
        Human-readable, finding-specific explanation.
    target:
        What was analyzed: a file path for source lints, a component
        label (e.g. ``"stack:netbsd"``) for configuration checks.
    line:
        1-based source line for file findings, ``None`` otherwise.
    details:
        Machine-readable specifics (offending indices, byte counts...),
        carried verbatim into the JSON report.
    """

    rule_id: str
    message: str
    target: str
    line: int | None = None
    details: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rule_id not in RULES:
            raise ConfigurationError(f"unknown rule id {self.rule_id!r}")

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    @property
    def location(self) -> str:
        if self.line is not None:
            return f"{self.target}:{self.line}"
        return self.target


def count_by_severity(findings: list[Finding]) -> dict[str, int]:
    """``{"error": n, "warning": m, "info": k}`` over a finding list."""
    counts = {severity.value: 0 for severity in Severity}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts


def worst_severity(findings: list[Finding]) -> Severity | None:
    """The most severe level present, or ``None`` when clean."""
    if not findings:
        return None
    return max((finding.severity for finding in findings), key=lambda s: s.rank)
