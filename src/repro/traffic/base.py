"""Traffic sources: common vocabulary.

A traffic source yields :class:`Arrival` records — (time, size) pairs —
for a requested horizon.  Sources are deterministic given their RNG
seed, which is what lets every experiment be reproduced exactly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Arrival:
    """One packet arrival: absolute time in seconds and size in bytes."""

    time: float
    size: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"arrival time must be non-negative: {self.time}")
        if self.size <= 0:
            raise ConfigurationError(f"arrival size must be positive: {self.size}")


class TrafficSource(ABC):
    """Generates a packet arrival process."""

    @abstractmethod
    def arrivals(self, duration: float) -> Iterator[Arrival]:
        """Yield arrivals with ``0 <= time < duration``, in time order."""

    def arrival_list(self, duration: float) -> list[Arrival]:
        """Materialize :meth:`arrivals` as a list."""
        return list(self.arrivals(duration))


def make_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce a seed or generator into a generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
