"""Zipf-distributed flow (destination) structure over any arrival process.

Jain's lookup-cache study (DEC-TR-592, the data-side twin of the
paper's instruction-locality argument) rests on one empirical fact:
packet destinations are heavily skewed — a few flows receive most of
the traffic — so a small cache in front of the routing/PCB tables
captures most lookups.  This module layers that structure over the
existing arrival processes: :class:`ZipfFlowSource` wraps any
:class:`~repro.traffic.base.TrafficSource` (Poisson, Bellcore-like,
deterministic...) and tags each arrival with a flow id drawn from a
Zipf(``skew``) distribution over ``num_flows`` flows.

Flow draws are seeded through the package's crc32 derivation
convention (``crc32("zipf:{seed}")``), so the flow sequence is a pure
function of the seed — independent of PYTHONHASHSEED, worker count,
and how many times the stream is materialized — and never perturbs the
base source's own RNG stream.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from .base import Arrival, TrafficSource


@dataclass(frozen=True, slots=True)
class FlowArrival(Arrival):
    """One arrival carrying its destination flow id.

    ``flow`` identifies the destination/PCB the packet's lookup keys
    on; ids are dense in ``0..num_flows-1`` with flow 0 the most
    popular under any positive skew.
    """

    flow: int = 0

    def __post_init__(self) -> None:
        # Explicit base call: slots=True makes @dataclass rebind the
        # class, which breaks zero-argument super() in methods defined
        # before the rebind.
        Arrival.__post_init__(self)
        if self.flow < 0:
            raise ConfigurationError(
                f"flow id must be non-negative: {self.flow}"
            )


def zipf_weights(num_flows: int, skew: float) -> np.ndarray:
    """Normalized Zipf probabilities over ``num_flows`` ranked flows.

    Flow ``k`` (0-based rank) gets probability proportional to
    ``(k + 1) ** -skew``; ``skew=0`` degenerates to uniform.  Raises
    :class:`~repro.errors.ConfigurationError` for an empty flow space
    or a negative / non-finite skew.
    """
    if num_flows < 1:
        raise ConfigurationError(f"num_flows must be >= 1, got {num_flows}")
    if not math.isfinite(skew):
        raise ConfigurationError(f"zipf skew must be finite, got {skew}")
    if skew < 0:
        raise ConfigurationError(f"zipf skew must be non-negative, got {skew}")
    weights = np.arange(1, num_flows + 1, dtype=np.float64) ** -float(skew)
    return weights / weights.sum()


def flow_rng(seed: int) -> np.random.Generator:
    """The flow-draw generator for one run seed.

    Derived as ``crc32("zipf:{seed}")`` — the package's standard seed
    derivation (compare :func:`repro.sim.multicore.core_seed`) — so
    flow draws share a run's seed without consuming the base traffic
    source's RNG stream.
    """
    return np.random.default_rng(
        zlib.crc32(f"zipf:{seed}".encode("utf-8"))
    )


def zipf_flow_ids(
    count: int, num_flows: int, skew: float, seed: int
) -> np.ndarray:
    """Draw ``count`` flow ids in one deterministic block.

    A single vectorized draw (rather than one per arrival) pins the
    sequence to exactly one RNG consumption pattern, so the ids depend
    only on ``(count, num_flows, skew, seed)``.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    weights = zipf_weights(num_flows, skew)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    return flow_rng(seed).choice(
        num_flows, size=count, p=weights
    ).astype(np.int64)


class ZipfFlowSource(TrafficSource):
    """A base arrival process with Zipf-distributed destination flows.

    Wraps any :class:`~repro.traffic.base.TrafficSource` and yields
    :class:`FlowArrival` records: the base source's (time, size) pairs,
    each tagged with a flow id drawn Zipf(``skew``) over ``num_flows``
    flows.  The wrapper is deterministic given ``seed`` and leaves the
    base source's RNG untouched, so the same base stream can be
    re-flowed at several skews for controlled comparisons.

    The base stream is *snapshotted* on first materialization of each
    horizon: stateful base sources (Pareto on/off in particular) hold a
    live RNG that advances every time ``arrival_list`` is called, so
    without the snapshot each materialization of this wrapper would tag
    a *different* base stream with the *same* pinned flow ids — a
    mismatch that never surfaces over memoryless Poisson defaults but
    breaks replay and cross-scheduler comparisons over a bursty base.
    """

    def __init__(
        self,
        base: TrafficSource,
        num_flows: int = 64,
        skew: float = 1.0,
        seed: int = 0,
    ) -> None:
        # Validate eagerly so misconfiguration fails at construction,
        # not at first materialization inside a harness worker.
        zipf_weights(num_flows, skew)
        self.base = base
        self.num_flows = num_flows
        self.skew = float(skew)
        self.seed = int(seed)
        self._snapshots: dict[float, tuple[Arrival, ...]] = {}

    @property
    def rate(self) -> float | None:
        """The base source's nominal rate, if it declares one."""
        return getattr(self.base, "rate", None)

    def arrivals(self, duration: float) -> Iterator[FlowArrival]:
        """Yield the base stream re-wrapped as :class:`FlowArrival`.

        The whole flow-id block is drawn up front from the derived
        generator, so partial consumption of the iterator cannot shift
        later draws; the base stream is materialized exactly once per
        horizon and cached, so a stateful base source's RNG is consumed
        exactly once no matter how many times this wrapper is
        materialized.
        """
        stream = self._snapshots.get(duration)
        if stream is None:
            stream = tuple(self.base.arrival_list(duration))
            self._snapshots[duration] = stream
        flows = zipf_flow_ids(
            len(stream), self.num_flows, self.skew, self.seed
        )
        for arrival, flow in zip(stream, flows):
            yield FlowArrival(
                time=arrival.time, size=arrival.size, flow=int(flow)
            )

    def describe(self) -> dict:
        """Static description for analysis and reports."""
        return {
            "source": type(self).__name__,
            "base": type(self.base).__name__,
            "num_flows": self.num_flows,
            "skew": self.skew,
            "seed": self.seed,
        }
