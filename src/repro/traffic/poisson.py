"""Poisson and deterministic arrival processes.

The paper's Figures 5 and 6 drive the synthetic stack with "a stream of
552-byte messages (a common packet size in IP internetworks) from a
Poisson traffic source".
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from .base import Arrival, TrafficSource, make_rng

#: The paper's message size for Figures 5 and 6.
PAPER_MESSAGE_SIZE = 552


class PoissonSource(TrafficSource):
    """Poisson arrivals at a fixed rate with a fixed message size.

    Parameters
    ----------
    rate:
        Mean arrival rate in messages/second; must be positive.
    size:
        Message size in bytes (552 in the paper).
    rng:
        Seed or generator for reproducibility.
    """

    def __init__(
        self,
        rate: float,
        size: int = PAPER_MESSAGE_SIZE,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        if size <= 0:
            raise ConfigurationError(f"message size must be positive, got {size}")
        self.rate = rate
        self.size = size
        self.rng = make_rng(rng)

    def arrivals(self, duration: float) -> Iterator[Arrival]:
        if duration <= 0:
            return
        time = 0.0
        # Draw exponential gaps in blocks to amortize RNG overhead.
        block = max(16, int(self.rate * duration * 1.2))
        while True:
            gaps = self.rng.exponential(1.0 / self.rate, size=block)
            for gap in gaps:
                time += gap
                if time >= duration:
                    return
                yield Arrival(time, self.size)


class DeterministicSource(TrafficSource):
    """Evenly spaced arrivals (a pure CBR stream; useful in tests).

    The first arrival lands one interval in, so an empty prefix never
    occurs and the count over ``duration`` is ``floor(rate*duration)``.
    """

    def __init__(self, rate: float, size: int = PAPER_MESSAGE_SIZE) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        if size <= 0:
            raise ConfigurationError(f"message size must be positive, got {size}")
        self.rate = rate
        self.size = size

    def arrivals(self, duration: float) -> Iterator[Arrival]:
        interval = 1.0 / self.rate
        count = int(self.rate * duration)
        for index in range(1, count + 1):
            time = index * interval
            if time >= duration:
                return
            yield Arrival(time, self.size)


class BurstSource(TrafficSource):
    """Back-to-back bursts at a fixed burst rate (stress test source).

    Emits ``burst_size`` arrivals at the same timestamp every
    ``1/burst_rate`` seconds — the adversarial best case for batching.
    """

    def __init__(
        self, burst_rate: float, burst_size: int, size: int = PAPER_MESSAGE_SIZE
    ) -> None:
        if burst_rate <= 0:
            raise ConfigurationError("burst rate must be positive")
        if burst_size <= 0:
            raise ConfigurationError("burst size must be positive")
        self.burst_rate = burst_rate
        self.burst_size = burst_size
        self.size = size

    def arrivals(self, duration: float) -> Iterator[Arrival]:
        interval = 1.0 / self.burst_rate
        time = 0.0
        while time < duration:
            for _ in range(self.burst_size):
                yield Arrival(time, self.size)
            time += interval
