"""Bellcore-format Ethernet traces: reader, writer, and synthesizer.

The Leland et al. traces used by the paper's Figure 7 are distributed as
two-column ASCII: a floating-point timestamp (seconds) and a packet
length in bytes, one packet per line.  This module reads and writes
that format, and — since the original traces are not bundled — can
*synthesize* a trace with the same qualitative properties: self-similar
arrivals (via :class:`~repro.traffic.onoff.ParetoOnOffSource`) and the
strongly bimodal Ethernet packet-size mix of 1989 LAN traffic.

If you have a real Bellcore trace file (e.g. ``BC-pOct89``), load it
with :func:`read_bellcore_trace` and every Figure 7 harness accepts it
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import ConfigurationError, TraceError
from .base import Arrival, TrafficSource, make_rng
from .onoff import ParetoOnOffSource

#: Minimum / maximum Ethernet frame sizes.
ETHERNET_MIN = 64
ETHERNET_MAX = 1518


@dataclass(frozen=True)
class SizeMix:
    """A discrete packet-size mixture: sizes and their probabilities."""

    sizes: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights) or not self.sizes:
            raise ConfigurationError("sizes and weights must align and be non-empty")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ConfigurationError("weights must be non-negative and sum > 0")

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        probs = np.asarray(self.weights, dtype=float)
        probs = probs / probs.sum()
        return rng.choice(np.asarray(self.sizes), size=count, p=probs)

    def __call__(self, rng: np.random.Generator) -> int:
        return int(self.sample(rng, 1)[0])

    @property
    def mean(self) -> float:
        probs = np.asarray(self.weights, dtype=float)
        probs = probs / probs.sum()
        return float(np.dot(probs, np.asarray(self.sizes, dtype=float)))


#: 1989-vintage LAN mix: dominated by minimum-size frames (interactive,
#: ACKs, NFS control), a band of medium frames, and a mass at the MTU
#: (NFS 8 KB transfers fragment into back-to-back 1518/1078 frames).
OCT89_SIZE_MIX = SizeMix(
    sizes=(64, 92, 128, 160, 256, 552, 576, 1078, 1518),
    weights=(0.35, 0.12, 0.09, 0.05, 0.05, 0.06, 0.08, 0.08, 0.12),
)


def read_bellcore_trace(
    path: str | Path, limit: float | None = None, clamp: bool = False
) -> list[Arrival]:
    """Read a two-column (timestamp, length) Bellcore-format trace.

    ``limit`` truncates to the first ``limit`` seconds (the paper uses
    "the first 1000 seconds of the October 5, 1989 trace").

    Every record is validated — a dirty trace silently corrupts every
    simulation downstream (negative times break the event clock,
    non-monotonic timestamps deadlock admission ordering, absurd sizes
    blow out the per-byte cost model).  Violations raise
    :class:`~repro.errors.TraceError` naming ``file:line``:

    * timestamps must be non-negative and non-decreasing;
    * sizes must be within ``[1, ETHERNET_MAX]`` bytes.

    Real captures are sometimes dirty in harmless ways (clock skew at
    a reboot, a trailing runt record).  ``clamp=True`` is the escape
    hatch: negative times clamp to ``0.0``, a backwards timestamp
    clamps up to the previous record's time, and sizes clamp into
    ``[1, ETHERNET_MAX]`` — the trace loads, monotone and in range,
    instead of raising.
    """
    arrivals: list[Arrival] = []
    last_time = 0.0
    with open(path, "r", encoding="ascii") as stream:
        for lineno, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 2:
                raise TraceError(f"{path}:{lineno}: expected two columns, got {line!r}")
            try:
                time = float(fields[0])
                size = int(fields[1])
            except ValueError as exc:
                raise TraceError(f"{path}:{lineno}: cannot parse {line!r}") from exc
            if time < 0:
                if not clamp:
                    raise TraceError(
                        f"{path}:{lineno}: negative timestamp {time!r} "
                        f"(pass clamp=True to clamp to 0)"
                    )
                time = 0.0
            if time < last_time:
                if not clamp:
                    raise TraceError(
                        f"{path}:{lineno}: non-monotonic timestamp {time!r} "
                        f"after {last_time!r} (pass clamp=True to clamp "
                        f"forward)"
                    )
                time = last_time
            if not 1 <= size <= ETHERNET_MAX:
                if not clamp:
                    raise TraceError(
                        f"{path}:{lineno}: size {size} outside "
                        f"[1, {ETHERNET_MAX}] (pass clamp=True to clamp "
                        f"into range)"
                    )
                size = min(max(size, 1), ETHERNET_MAX)
            if limit is not None and time >= limit:
                break
            last_time = time
            arrivals.append(Arrival(time, size))
    return arrivals


def write_bellcore_trace(arrivals: Iterable[Arrival], path: str | Path) -> None:
    """Write arrivals in the two-column Bellcore format."""
    with open(path, "w", encoding="ascii") as stream:
        for arrival in arrivals:
            stream.write(f"{arrival.time:.6f} {arrival.size}\n")


def synthesize_bellcore_like(
    duration: float,
    mean_rate: float = 1000.0,
    size_mix: SizeMix = OCT89_SIZE_MIX,
    rng: np.random.Generator | int | None = None,
    num_sources: int = 32,
    alpha: float = 1.5,
) -> list[Arrival]:
    """Synthesize a self-similar, Bellcore-like arrival list.

    ``mean_rate`` is the target long-run packet rate.  The ON/OFF
    parameters keep the Willinger-construction defaults and scale the
    per-source ON rate to hit the target mean.
    """
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if mean_rate <= 0:
        raise ConfigurationError("mean rate must be positive")
    rng = make_rng(rng)
    mean_on, mean_off = 0.02, 0.08
    duty = mean_on / (mean_on + mean_off)
    packet_rate_on = mean_rate / (num_sources * duty)
    source = ParetoOnOffSource(
        num_sources=num_sources,
        packet_rate_on=packet_rate_on,
        mean_on=mean_on,
        mean_off=mean_off,
        alpha=alpha,
        size=size_mix,
        rng=rng,
    )
    return source.arrival_list(duration)


class TraceSource(TrafficSource):
    """A traffic source replaying a fixed arrival list (real or synthetic)."""

    def __init__(self, arrivals: Sequence[Arrival]) -> None:
        self._arrivals = sorted(arrivals, key=lambda a: a.time)

    def arrivals(self, duration: float) -> Iterator[Arrival]:
        for arrival in self._arrivals:
            if arrival.time >= duration:
                return
            yield arrival

    def __len__(self) -> int:
        return len(self._arrivals)
