"""Traffic sources: Poisson, deterministic, bursty, and self-similar.

The self-similar generator plus the Bellcore trace reader/writer stand
in for the Leland et al. Ethernet traces that drive the paper's
Figure 7 (see DESIGN.md, substitutions).
"""

from .base import Arrival, TrafficSource, make_rng
from .bellcore import (
    ETHERNET_MAX,
    ETHERNET_MIN,
    OCT89_SIZE_MIX,
    SizeMix,
    TraceSource,
    read_bellcore_trace,
    synthesize_bellcore_like,
    write_bellcore_trace,
)
from .onoff import ParetoOnOffSource, hurst_estimate, pareto_samples
from .poisson import (
    PAPER_MESSAGE_SIZE,
    BurstSource,
    DeterministicSource,
    PoissonSource,
)

__all__ = [
    "Arrival",
    "BurstSource",
    "DeterministicSource",
    "ETHERNET_MAX",
    "ETHERNET_MIN",
    "OCT89_SIZE_MIX",
    "PAPER_MESSAGE_SIZE",
    "ParetoOnOffSource",
    "PoissonSource",
    "SizeMix",
    "TraceSource",
    "TrafficSource",
    "hurst_estimate",
    "make_rng",
    "pareto_samples",
    "read_bellcore_trace",
    "synthesize_bellcore_like",
    "write_bellcore_trace",
]
