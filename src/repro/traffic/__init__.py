"""Traffic sources: Poisson, deterministic, bursty, and self-similar.

The self-similar generator plus the Bellcore trace reader/writer stand
in for the Leland et al. Ethernet traces that drive the paper's
Figure 7 (see DESIGN.md, substitutions).  :class:`ZipfFlowSource`
layers Zipf-distributed destination flows over any base source for the
flow-lookup cache sweep (:mod:`repro.flows`).
"""

from .base import Arrival, TrafficSource, make_rng
from .bellcore import (
    ETHERNET_MAX,
    ETHERNET_MIN,
    OCT89_SIZE_MIX,
    SizeMix,
    TraceSource,
    read_bellcore_trace,
    synthesize_bellcore_like,
    write_bellcore_trace,
)
from .onoff import ParetoOnOffSource, hurst_estimate, pareto_samples
from .poisson import (
    PAPER_MESSAGE_SIZE,
    BurstSource,
    DeterministicSource,
    PoissonSource,
)
from .zipf import (
    FlowArrival,
    ZipfFlowSource,
    flow_rng,
    zipf_flow_ids,
    zipf_weights,
)

__all__ = [
    "Arrival",
    "BurstSource",
    "DeterministicSource",
    "ETHERNET_MAX",
    "ETHERNET_MIN",
    "FlowArrival",
    "OCT89_SIZE_MIX",
    "PAPER_MESSAGE_SIZE",
    "ParetoOnOffSource",
    "PoissonSource",
    "SizeMix",
    "TraceSource",
    "TrafficSource",
    "ZipfFlowSource",
    "flow_rng",
    "hurst_estimate",
    "make_rng",
    "pareto_samples",
    "read_bellcore_trace",
    "synthesize_bellcore_like",
    "write_bellcore_trace",
    "zipf_flow_ids",
    "zipf_weights",
]
