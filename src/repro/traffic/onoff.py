"""Self-similar traffic: aggregated Pareto ON/OFF sources.

The paper drives Figure 7 with the Bellcore Ethernet traces of Leland
et al., "because Poisson processes are not representative of many
real-world traffic sources".  We do not ship the Bellcore traces;
instead this module synthesizes long-range-dependent traffic using the
standard construction (Willinger et al.): superpose many ON/OFF sources
whose ON and OFF period lengths are heavy-tailed (Pareto with
1 < alpha < 2).  The aggregate packet process is asymptotically
self-similar with Hurst parameter H = (3 - alpha) / 2.
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from .base import Arrival, TrafficSource, make_rng


def pareto_samples(
    rng: np.random.Generator, alpha: float, mean: float, count: int
) -> np.ndarray:
    """Pareto-distributed positive samples with the requested mean.

    Uses the Lomax/Pareto-I form with location ``xm`` chosen so the
    distribution mean is ``mean``; requires ``alpha > 1`` for a finite
    mean.
    """
    if alpha <= 1:
        raise ConfigurationError(f"Pareto alpha must exceed 1, got {alpha}")
    if mean <= 0:
        raise ConfigurationError(f"Pareto mean must be positive, got {mean}")
    xm = mean * (alpha - 1) / alpha
    # Inverse-CDF sampling of Pareto-I: xm * U^(-1/alpha).
    u = rng.random(count)
    return xm * u ** (-1.0 / alpha)


class ParetoOnOffSource(TrafficSource):
    """A superposition of heavy-tailed ON/OFF packet sources.

    Parameters
    ----------
    num_sources:
        How many independent ON/OFF sources to aggregate (more sources
        → smoother short-term, same long-range dependence).
    packet_rate_on:
        Packet emission rate of one source while ON, packets/second.
    mean_on / mean_off:
        Mean ON and OFF period durations in seconds.
    alpha:
        Pareto shape for both period distributions; 1 < alpha < 2 gives
        long-range dependence (H = (3 - alpha)/2).
    size:
        Packet size in bytes, or a :class:`PacketSizeDistribution`-like
        callable ``(rng) -> int``.
    """

    def __init__(
        self,
        num_sources: int = 32,
        packet_rate_on: float = 1000.0,
        mean_on: float = 0.02,
        mean_off: float = 0.08,
        alpha: float = 1.5,
        size: int = 552,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if num_sources <= 0:
            raise ConfigurationError("need at least one ON/OFF source")
        if packet_rate_on <= 0:
            raise ConfigurationError("ON packet rate must be positive")
        if mean_on <= 0 or mean_off <= 0:
            raise ConfigurationError("mean ON/OFF durations must be positive")
        self.num_sources = num_sources
        self.packet_rate_on = packet_rate_on
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.alpha = alpha
        self.size = size
        self.rng = make_rng(rng)

    @property
    def mean_rate(self) -> float:
        """Long-run aggregate packet rate in packets/second."""
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return self.num_sources * duty * self.packet_rate_on

    def _one_source_times(self, duration: float, rng: np.random.Generator) -> np.ndarray:
        """Packet timestamps of a single ON/OFF source over ``duration``."""
        times: list[float] = []
        now = 0.0
        # Start a random way into an OFF period so sources desynchronize.
        now += float(rng.random()) * self.mean_off
        interval = 1.0 / self.packet_rate_on
        while now < duration:
            on_len = float(pareto_samples(rng, self.alpha, self.mean_on, 1)[0])
            end_on = min(now + on_len, duration)
            t = now
            while t < end_on:
                times.append(t)
                t += interval
            off_len = float(pareto_samples(rng, self.alpha, self.mean_off, 1)[0])
            now = now + on_len + off_len
        return np.asarray(times)

    def arrivals(self, duration: float) -> Iterator[Arrival]:
        if duration <= 0:
            return
        streams = [
            self._one_source_times(duration, self.rng)
            for _ in range(self.num_sources)
        ]
        merged = heapq.merge(*[iter(stream) for stream in streams])
        for time in merged:
            size = self.size(self.rng) if callable(self.size) else self.size
            yield Arrival(float(time), int(size))


def hurst_estimate(counts: np.ndarray, min_scale: int = 1, num_scales: int = 6) -> float:
    """Estimate the Hurst parameter of a count series by variance-time plot.

    Aggregates ``counts`` over windows of increasing size m and fits
    ``log Var(X^(m))`` against ``log m``; slope = 2H - 2.  A Poisson
    process gives H ≈ 0.5; self-similar traffic gives H > 0.5.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.size < 2 ** (num_scales + 2):
        raise ConfigurationError(
            f"need at least {2 ** (num_scales + 2)} samples, got {counts.size}"
        )
    scales = []
    variances = []
    for level in range(num_scales):
        m = min_scale * 2**level
        usable = (counts.size // m) * m
        agg = counts[:usable].reshape(-1, m).mean(axis=1)
        var = float(agg.var())
        if var <= 0:
            continue
        scales.append(m)
        variances.append(var)
    if len(scales) < 2:
        raise ConfigurationError("degenerate count series: zero variance")
    slope = np.polyfit(np.log(scales), np.log(variances), 1)[0]
    return float(1.0 + slope / 2.0)
