"""A compact, real TCP: segments, PCBs, and receive-side processing.

Implements enough of TCP to run the paper's traced scenario for real —
passive open, the established-state receive fastpath with header
prediction, delayed ACKs ("this TCP implementation sends an ACK for
every second data packet"), out-of-order buffering, and teardown — plus
the single-entry PCB cache whose hit the trace narrative mentions.

Sequence numbers use full mod-2^32 arithmetic.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from ..errors import ChecksumError, ProtocolError
from .checksum import internet_checksum
from .ip import IPv4Address, pseudo_header

HEADER_LEN = 20
_FIXED = struct.Struct("!HHIIBBHHH")

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20

SEQ_MOD = 1 << 32
DEFAULT_WINDOW = 16384
DEFAULT_MSS = 1460


def seq_add(a: int, b: int) -> int:
    return (a + b) % SEQ_MOD


def seq_diff(a: int, b: int) -> int:
    """Signed distance a - b in sequence space."""
    diff = (a - b) % SEQ_MOD
    if diff >= SEQ_MOD // 2:
        diff -= SEQ_MOD
    return diff


def seq_lt(a: int, b: int) -> bool:
    return seq_diff(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    return seq_diff(a, b) <= 0


@dataclass(frozen=True)
class TcpHeader:
    """A parsed TCP header (options carried opaquely)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int = DEFAULT_WINDOW
    urgent: int = 0
    options: bytes = b""

    @property
    def header_length(self) -> int:
        return HEADER_LEN + len(self.options)

    def has(self, flag: int) -> bool:
        return bool(self.flags & flag)

    @classmethod
    def parse(
        cls,
        data: bytes | memoryview,
        src: IPv4Address | None = None,
        dst: IPv4Address | None = None,
        verify: bool = False,
    ) -> tuple["TcpHeader", bytes]:
        """Parse a TCP segment; returns (header, payload).

        Checksum verification needs the IP pseudo-header, hence the
        optional ``src``/``dst``.
        """
        data = bytes(data)
        if len(data) < HEADER_LEN:
            raise ProtocolError(f"TCP header needs 20 bytes, got {len(data)}")
        (src_port, dst_port, seq, ack, offset_byte, flags, window, _checksum,
         urgent) = _FIXED.unpack_from(data)
        offset = (offset_byte >> 4) * 4
        if offset < HEADER_LEN or offset > len(data):
            raise ProtocolError(f"bad TCP data offset {offset}")
        if verify:
            if src is None or dst is None:
                raise ProtocolError("checksum verification needs src/dst addresses")
            from .ip import PROTO_TCP

            pseudo = pseudo_header(src, dst, PROTO_TCP, len(data))
            if internet_checksum(pseudo + data) != 0:
                raise ChecksumError("TCP checksum failed")
        header = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
            options=data[HEADER_LEN:offset],
        )
        return header, data[offset:]

    def serialize(
        self,
        payload: bytes = b"",
        src: IPv4Address | None = None,
        dst: IPv4Address | None = None,
    ) -> bytes:
        """Serialize; fills in the checksum when addresses are given."""
        if len(self.options) % 4:
            raise ProtocolError("TCP options must be padded to 32-bit words")
        offset = self.header_length // 4
        base = _FIXED.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            offset << 4,
            self.flags,
            self.window,
            0,
            self.urgent,
        ) + self.options
        segment = base + payload
        if src is not None and dst is not None:
            from .ip import PROTO_TCP

            pseudo = pseudo_header(src, dst, PROTO_TCP, len(segment))
            checksum = internet_checksum(pseudo + segment)
            segment = segment[:16] + struct.pack("!H", checksum) + segment[18:]
        return segment


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


#: Connection 4-tuple: (local addr, local port, remote addr, remote port).
ConnKey = tuple[str, int, str, int]


@dataclass
class TcpStats:
    """Receive-path counters (mirrors the tcpstat the kernel keeps)."""

    segments_in: int = 0
    fastpath_hits: int = 0
    acks_sent: int = 0
    delayed_acks: int = 0
    out_of_order: int = 0
    duplicates: int = 0
    resets_sent: int = 0


@dataclass
class Pcb:
    """A protocol control block: one connection's state."""

    local_addr: IPv4Address
    local_port: int
    remote_addr: IPv4Address | None = None
    remote_port: int | None = None
    state: TcpState = TcpState.LISTEN
    irs: int = 0  # initial receive sequence
    iss: int = 0  # initial send sequence
    rcv_nxt: int = 0
    snd_nxt: int = 0
    snd_una: int = 0
    rcv_wnd: int = DEFAULT_WINDOW
    #: Segments received since the last ACK (delayed-ACK counter).
    unacked_segments: int = 0
    #: Out-of-order segments keyed by sequence number.
    reassembly: dict[int, bytes] = field(default_factory=dict)

    @property
    def key(self) -> ConnKey:
        return (
            str(self.local_addr),
            self.local_port,
            str(self.remote_addr) if self.remote_addr else "*",
            self.remote_port if self.remote_port is not None else 0,
        )


class PcbTable:
    """Connection lookup with the single-entry cache the trace mentions
    ("the single-entry PCB cache hits")."""

    def __init__(self) -> None:
        self._table: dict[ConnKey, Pcb] = {}
        self._listeners: dict[tuple[str, int], Pcb] = {}
        self._last: Pcb | None = None
        self.cache_hits = 0
        self.cache_misses = 0

    def insert(self, pcb: Pcb) -> None:
        if pcb.state is TcpState.LISTEN:
            self._listeners[(str(pcb.local_addr), pcb.local_port)] = pcb
        else:
            self._table[pcb.key] = pcb

    def remove(self, pcb: Pcb) -> None:
        self._table.pop(pcb.key, None)
        listener_key = (str(pcb.local_addr), pcb.local_port)
        if self._listeners.get(listener_key) is pcb:
            self._listeners.pop(listener_key)
        if self._last is pcb:
            self._last = None

    def lookup(
        self,
        local_addr: IPv4Address,
        local_port: int,
        remote_addr: IPv4Address,
        remote_port: int,
    ) -> Pcb | None:
        """Find the PCB for a segment; checks the one-entry cache first."""
        key = (str(local_addr), local_port, str(remote_addr), remote_port)
        last = self._last
        if last is not None and last.key == key:
            self.cache_hits += 1
            return last
        self.cache_misses += 1
        pcb = self._table.get(key)
        if pcb is None:
            pcb = self._listeners.get((str(local_addr), local_port))
        if pcb is not None and pcb.state is not TcpState.LISTEN:
            self._last = pcb
        return pcb

    def __len__(self) -> int:
        return len(self._table) + len(self._listeners)

    def connections(self) -> list[Pcb]:
        """All non-listener PCBs (snapshot)."""
        return list(self._table.values())


@dataclass
class TcpResult:
    """What one segment's processing produced."""

    #: In-order payload bytes to append to the socket buffer.
    delivered: bytes = b""
    #: Segments to transmit (already serialized headers+payload).
    emitted: list[TcpHeader] = field(default_factory=list)
    #: True when the connection reached ESTABLISHED on this segment.
    established: bool = False
    #: True when the connection fully closed on this segment.
    closed: bool = False


class TcpReceiver:
    """Receive-side TCP processing over a :class:`PcbTable`.

    A deliberately compact ``tcp_input``: header prediction for the
    common case, the RFC 793 state machine for the rest.
    """

    def __init__(self, table: PcbTable | None = None, ack_every: int = 2) -> None:
        if ack_every < 1:
            raise ProtocolError("ack_every must be at least 1")
        # Not ``table or PcbTable()``: an empty table is falsy.
        self.table = table if table is not None else PcbTable()
        self.ack_every = ack_every
        self.stats = TcpStats()

    # ------------------------------------------------------------------
    # Connection management

    def listen(self, addr: IPv4Address, port: int) -> Pcb:
        pcb = Pcb(local_addr=addr, local_port=port, state=TcpState.LISTEN)
        self.table.insert(pcb)
        return pcb

    # ------------------------------------------------------------------
    # Segment processing

    def segment_arrives(
        self,
        header: TcpHeader,
        payload: bytes,
        src: IPv4Address,
        dst: IPv4Address,
    ) -> TcpResult:
        """Process one segment addressed to this host."""
        self.stats.segments_in += 1
        pcb = self.table.lookup(dst, header.dst_port, src, header.src_port)
        if pcb is None:
            return self._reset_for(header)
        if pcb.state is TcpState.LISTEN:
            return self._listen_state(pcb, header, src)
        if header.has(FLAG_RST):
            self.table.remove(pcb)
            pcb.state = TcpState.CLOSED
            return TcpResult(closed=True)
        if pcb.state is TcpState.SYN_RCVD:
            return self._syn_rcvd_state(pcb, header)
        return self._established_states(pcb, header, payload)

    def _reset_for(self, header: TcpHeader) -> TcpResult:
        """No PCB: answer with RST (unless the segment itself is RST)."""
        if header.has(FLAG_RST):
            return TcpResult()
        self.stats.resets_sent += 1
        rst = TcpHeader(
            src_port=header.dst_port,
            dst_port=header.src_port,
            seq=header.ack if header.has(FLAG_ACK) else 0,
            ack=seq_add(header.seq, 1),
            flags=FLAG_RST | FLAG_ACK,
            window=0,
        )
        return TcpResult(emitted=[rst])

    def _listen_state(self, listener: Pcb, header: TcpHeader, src: IPv4Address) -> TcpResult:
        if not header.has(FLAG_SYN) or header.has(FLAG_ACK):
            return self._reset_for(header)
        # Spawn a connection PCB; ISS derived deterministically for
        # reproducible tests (a real stack randomizes).
        conn = Pcb(
            local_addr=listener.local_addr,
            local_port=listener.local_port,
            remote_addr=src,
            remote_port=header.src_port,
            state=TcpState.SYN_RCVD,
            irs=header.seq,
            rcv_nxt=seq_add(header.seq, 1),
            iss=0x1000,
            snd_nxt=0x1001,
            snd_una=0x1000,
        )
        self.table.insert(conn)
        self.stats.acks_sent += 1
        synack = TcpHeader(
            src_port=conn.local_port,
            dst_port=conn.remote_port or 0,
            seq=conn.iss,
            ack=conn.rcv_nxt,
            flags=FLAG_SYN | FLAG_ACK,
            window=conn.rcv_wnd,
        )
        return TcpResult(emitted=[synack])

    def _syn_rcvd_state(self, pcb: Pcb, header: TcpHeader) -> TcpResult:
        if header.has(FLAG_ACK) and header.ack == pcb.snd_nxt:
            pcb.state = TcpState.ESTABLISHED
            pcb.snd_una = header.ack
            return TcpResult(established=True)
        return TcpResult()

    def _established_states(
        self, pcb: Pcb, header: TcpHeader, payload: bytes
    ) -> TcpResult:
        result = TcpResult()
        if header.has(FLAG_ACK):
            if seq_lt(pcb.snd_una, header.ack) and seq_le(header.ack, pcb.snd_nxt):
                pcb.snd_una = header.ack
            if pcb.state is TcpState.LAST_ACK and header.ack == pcb.snd_nxt:
                pcb.state = TcpState.CLOSED
                self.table.remove(pcb)
                result.closed = True
                return result

        if payload:
            self._receive_data(pcb, header, payload, result)
        if header.has(FLAG_FIN) and header.seq == pcb.rcv_nxt and not payload:
            self._receive_fin(pcb, result)
        elif header.has(FLAG_FIN) and payload:
            # FIN rides the last data segment; honour it only if the
            # data landed in order.
            if seq_add(header.seq, len(payload)) == pcb.rcv_nxt:
                self._receive_fin(pcb, result)
        return result

    def _receive_data(
        self, pcb: Pcb, header: TcpHeader, payload: bytes, result: TcpResult
    ) -> None:
        if header.seq == pcb.rcv_nxt and pcb.state is TcpState.ESTABLISHED:
            # Header-prediction fastpath: next expected, established.
            self.stats.fastpath_hits += 1
            delivered = bytearray(payload)
            pcb.rcv_nxt = seq_add(pcb.rcv_nxt, len(payload))
            # Pull any contiguous out-of-order segments.
            while pcb.rcv_nxt in pcb.reassembly:
                chunk = pcb.reassembly.pop(pcb.rcv_nxt)
                delivered += chunk
                pcb.rcv_nxt = seq_add(pcb.rcv_nxt, len(chunk))
            result.delivered = bytes(delivered)
            pcb.unacked_segments += 1
            if pcb.unacked_segments >= self.ack_every:
                self._emit_ack(pcb, result)
            else:
                self.stats.delayed_acks += 1
        elif seq_lt(header.seq, pcb.rcv_nxt):
            # Old duplicate: re-ACK immediately.
            self.stats.duplicates += 1
            self._emit_ack(pcb, result)
        else:
            # Out of order: buffer and send a duplicate ACK.
            self.stats.out_of_order += 1
            pcb.reassembly.setdefault(header.seq, payload)
            self._emit_ack(pcb, result)

    def _receive_fin(self, pcb: Pcb, result: TcpResult) -> None:
        pcb.rcv_nxt = seq_add(pcb.rcv_nxt, 1)
        pcb.state = TcpState.LAST_ACK
        fin_ack = TcpHeader(
            src_port=pcb.local_port,
            dst_port=pcb.remote_port or 0,
            seq=pcb.snd_nxt,
            ack=pcb.rcv_nxt,
            flags=FLAG_FIN | FLAG_ACK,
            window=pcb.rcv_wnd,
        )
        pcb.snd_nxt = seq_add(pcb.snd_nxt, 1)
        self.stats.acks_sent += 1
        result.emitted.append(fin_ack)

    def _emit_ack(self, pcb: Pcb, result: TcpResult) -> None:
        pcb.unacked_segments = 0
        self.stats.acks_sent += 1
        result.emitted.append(
            TcpHeader(
                src_port=pcb.local_port,
                dst_port=pcb.remote_port or 0,
                seq=pcb.snd_nxt,
                ack=pcb.rcv_nxt,
                flags=FLAG_ACK,
                window=pcb.rcv_wnd,
            )
        )

    def force_ack(self, pcb: Pcb) -> TcpHeader | None:
        """Flush a pending delayed ACK (the fast-timer would do this)."""
        if pcb.unacked_segments == 0:
            return None
        result = TcpResult()
        self._emit_ack(pcb, result)
        return result.emitted[0]
