"""Frame decoding: tcpdump-style one-line summaries.

A diagnostic layer over the parsers: give it raw frame bytes, get a
human-readable line per protocol level.  Used by the examples and handy
when a test fails on a frame you cannot read.
"""

from __future__ import annotations

from ..errors import ProtocolError
from . import ethernet
from .ethernet import EthernetHeader
from .icmp import IcmpMessage, IcmpType
from .ip import IPv4Header, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .tcp import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    FLAG_URG,
    TcpHeader,
)
from .udp import UdpHeader

_FLAG_LETTERS = (
    (FLAG_SYN, "S"),
    (FLAG_FIN, "F"),
    (FLAG_RST, "R"),
    (FLAG_PSH, "P"),
    (FLAG_URG, "U"),
    (FLAG_ACK, "."),
)


def tcp_flags_text(flags: int) -> str:
    """tcpdump-style flag string (``S``, ``.``, ``P.``, ``F.``...)."""
    text = "".join(letter for bit, letter in _FLAG_LETTERS if flags & bit)
    return text or "none"


def decode_frame(frame: bytes) -> str:
    """One-line summary of an Ethernet frame, best effort.

    Never raises: undecodable frames return a note instead, so the
    function is safe on hostile input.
    """
    try:
        return _decode_frame_strict(frame)
    except ProtocolError as exc:
        return f"[undecodable frame: {exc} ({len(frame)} bytes)]"


def _decode_frame_strict(frame: bytes) -> str:
    eth = EthernetHeader.parse(frame)
    if eth.ethertype != ethernet.ETHERTYPE_IP:
        return (
            f"{eth.src} > {eth.dst} ethertype {eth.ethertype:#06x} "
            f"length {len(frame)}"
        )
    body = frame[ethernet.HEADER_LEN:]
    ip = IPv4Header.parse(body[: min(len(body), 60)], verify=False)
    payload = body[ip.header_length : ip.total_length]
    base = f"{ip.src} > {ip.dst}"
    if ip.is_fragment:
        return (
            f"{base}: frag id {ip.identification} offset {ip.fragment_offset} "
            f"length {ip.payload_length}"
        )
    if ip.protocol == PROTO_TCP:
        header, data = TcpHeader.parse(payload)
        return (
            f"{ip.src}.{header.src_port} > {ip.dst}.{header.dst_port}: "
            f"Flags [{tcp_flags_text(header.flags)}], seq {header.seq}, "
            f"ack {header.ack}, win {header.window}, length {len(data)}"
        )
    if ip.protocol == PROTO_UDP:
        header, data = UdpHeader.parse(payload)
        return (
            f"{ip.src}.{header.src_port} > {ip.dst}.{header.dst_port}: "
            f"UDP, length {len(data)}"
        )
    if ip.protocol == PROTO_ICMP:
        icmp = IcmpMessage.parse(payload, verify=False)
        kind = {
            IcmpType.ECHO_REQUEST: "echo request",
            IcmpType.ECHO_REPLY: "echo reply",
            IcmpType.DEST_UNREACHABLE: "destination unreachable",
            IcmpType.TIME_EXCEEDED: "time exceeded",
        }.get(icmp.icmp_type, f"type {icmp.icmp_type}")
        return (
            f"{base}: ICMP {kind}, id {icmp.identifier}, seq {icmp.sequence}, "
            f"length {len(payload)}"
        )
    return f"{base}: ip-proto-{ip.protocol} length {ip.payload_length}"


def decode_frames(frames: list[bytes]) -> str:
    """Multi-line decode of a frame list, numbered."""
    return "\n".join(
        f"{index:4d}  {decode_frame(frame)}" for index, frame in enumerate(frames)
    )
