"""Assembling the byte-level protocol stack as schedulable layers.

Each layer here does *real* work — parsing, checksum verification,
socket-buffer appends — on mbuf chains, and carries a footprint whose
code sizes come from Table 1 of the paper, so the same stack runs both
functionally (tests, examples) and under the machine model (working-set
realism for small-message experiments).

Bottom to top: :class:`DeviceLayer` → :class:`IpLayer` →
:class:`TcpLayer` (or :class:`UdpLayer`) → :class:`SocketLayer`.
ACKs and other generated segments are handed to a transmit callback
rather than travelling up the receive stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..buffers.mbuf import MbufChain
from ..core.layer import Layer, LayerFootprint, Message
from ..errors import ProtocolError
from . import ethernet
from .fragment import Reassembler
from .ip import IPv4Address, IPv4Header, PROTO_TCP
from .socketlayer import Socket
from .tcp import TcpHeader, TcpReceiver
from .udp import UdpHeader

#: Footprints with code sizes from Table 1 (bytes of code in the
#: receive-path working set) and data sizes = read-only + mutable data.
DEVICE_FOOTPRINT = LayerFootprint(
    code_bytes=4480, data_bytes=864 + 672, base_cycles=300.0, per_byte_cycles=0.5
)
IP_FOOTPRINT = LayerFootprint(
    code_bytes=2784, data_bytes=480 + 128, base_cycles=200.0, per_byte_cycles=0.0
)
TCP_FOOTPRINT = LayerFootprint(
    code_bytes=3168, data_bytes=448 + 160, base_cycles=400.0, per_byte_cycles=1.0
)
SOCKET_FOOTPRINT = LayerFootprint(
    code_bytes=5536 + 608, data_bytes=544 + 448, base_cycles=250.0, per_byte_cycles=0.5
)


@dataclass
class StackStats:
    """Drop accounting across the receive path."""

    frames_in: int = 0
    bad_frames: int = 0
    non_ip: int = 0
    bad_ip: int = 0
    fragments: int = 0
    bad_transport: int = 0
    delivered: int = 0
    sobuf_full: int = 0


class DeviceLayer(Layer):
    """The Ethernet driver: frame → mbuf chain, header checked/stripped.

    Input messages carry raw frame bytes; the layer "copies" them into
    an mbuf chain (as ``leintr`` copies from device memory) and strips
    the Ethernet header.
    """

    def __init__(self, stats: StackStats, promiscuous: bool = False) -> None:
        super().__init__("device", DEVICE_FOOTPRINT)
        self.stats = stats
        self.promiscuous = promiscuous

    def deliver(self, message: Message) -> list[Message]:
        self.stats.frames_in += 1
        frame = message.payload
        if isinstance(frame, MbufChain):
            frame = bytes(frame)
        try:
            header = ethernet.EthernetHeader.parse(frame)
        except ProtocolError:
            self.stats.bad_frames += 1
            return []
        if header.ethertype != ethernet.ETHERTYPE_IP:
            self.stats.non_ip += 1
            return []
        chain = MbufChain.from_bytes(frame, leading_space=16)
        chain.strip(ethernet.HEADER_LEN)
        message.payload = chain
        message.meta["ethernet"] = header
        return [message]


class IpLayer(Layer):
    """``ipintr``: validate the IPv4 header, strip it, dispatch.

    Fragments are counted and — matching the traced fast path — dropped
    by default; pass a :class:`~repro.protocols.fragment.Reassembler`
    to enable the ``ip_reass`` slow path instead.
    """

    def __init__(
        self,
        stats: StackStats,
        local_addr: IPv4Address,
        reassembler: "Reassembler | None" = None,
    ) -> None:
        super().__init__("ip", IP_FOOTPRINT)
        self.stats = stats
        self.local_addr = local_addr
        self.reassembler = reassembler

    def deliver(self, message: Message) -> list[Message]:
        chain: MbufChain = message.payload
        try:
            chain.pullup(min(len(chain), 60))
            header = IPv4Header.parse(chain.peek(min(len(chain), 60)))
        except ProtocolError:
            self.stats.bad_ip += 1
            return []
        if str(header.dst) != str(self.local_addr) and not header.dst.is_broadcast:
            self.stats.bad_ip += 1
            return []
        if len(chain) < header.total_length:
            self.stats.bad_ip += 1
            return []
        chain.adj(-(len(chain) - header.total_length))  # trim Ethernet pad
        chain.strip(header.header_length)
        if header.is_fragment:
            self.stats.fragments += 1
            if self.reassembler is None:
                # The traced path "does very little because the message
                # is addressed to the host and is not a fragment"; the
                # default stack counts and drops.
                return []
            assembled = self.reassembler.accept(header, bytes(chain))
            if assembled is None:
                return []
            header, payload = assembled
            message.payload = MbufChain.from_bytes(payload, leading_space=0)
            message.meta["ip"] = header
            return [message]
        message.meta["ip"] = header
        return [message]


class TcpLayer(Layer):
    """``tcp_input``: checksum, PCB lookup, state machine, delayed ACK.

    ``flush_acks_on_batch_end`` emulates running the TCP fast timer at
    LDLP batch boundaries: any delayed ACK still pending when the batch
    finishes is emitted immediately.  Off by default — it makes LDLP
    emit *more* ACKs than the conventional schedule (which relies on
    the 200 ms timer the simulation doesn't run), trading a little
    transmit work for snappier acknowledgement under batching.
    """

    def __init__(
        self,
        stats: StackStats,
        receiver: TcpReceiver,
        transmit: Callable[[TcpHeader], None] | None = None,
        flush_acks_on_batch_end: bool = False,
    ) -> None:
        super().__init__("tcp", TCP_FOOTPRINT)
        self.stats = stats
        self.receiver = receiver
        self.transmit = transmit or (lambda header: None)
        self.flush_acks_on_batch_end = flush_acks_on_batch_end

    def flush(self) -> list[Message]:
        if not self.flush_acks_on_batch_end:
            return []
        for pcb in self.receiver.table.connections():
            ack = self.receiver.force_ack(pcb)
            if ack is not None:
                self.transmit(ack)
        return []

    def deliver(self, message: Message) -> list[Message]:
        chain: MbufChain = message.payload
        ip_header: IPv4Header = message.meta["ip"]
        segment = bytes(chain)
        # Verify the transport checksum over the chain (this is the
        # in_cksum walk of the trace).
        from .ip import pseudo_header
        from .checksum import internet_checksum

        pseudo = pseudo_header(ip_header.src, ip_header.dst, PROTO_TCP, len(segment))
        if internet_checksum(pseudo + segment) != 0:
            self.stats.bad_transport += 1
            return []
        try:
            header, payload = TcpHeader.parse(segment)
        except ProtocolError:
            self.stats.bad_transport += 1
            return []
        result = self.receiver.segment_arrives(
            header, payload, src=ip_header.src, dst=ip_header.dst
        )
        for emitted in result.emitted:
            self.transmit(emitted)
        if not result.delivered:
            return []
        message.payload = MbufChain.from_bytes(result.delivered, leading_space=0)
        message.meta["tcp"] = header
        return [message]


class UdpLayer(Layer):
    """``udp_input``: checksum, demultiplex to a socket by port."""

    def __init__(self, stats: StackStats, sockets: dict[int, Socket]) -> None:
        super().__init__("udp", TCP_FOOTPRINT)
        self.stats = stats
        self.sockets = sockets

    def deliver(self, message: Message) -> list[Message]:
        chain: MbufChain = message.payload
        ip_header: IPv4Header = message.meta["ip"]
        datagram = bytes(chain)
        try:
            header, payload = UdpHeader.parse(
                datagram, src=ip_header.src, dst=ip_header.dst, verify=True
            )
        except ProtocolError:
            self.stats.bad_transport += 1
            return []
        if header.dst_port not in self.sockets:
            self.stats.bad_transport += 1
            return []
        message.payload = MbufChain.from_bytes(payload, leading_space=0)
        message.meta["udp"] = header
        message.meta["socket"] = self.sockets[header.dst_port]
        return [message]


class SocketLayer(Layer):
    """``sbappend``/``sowakeup``: deliver payload to the socket buffer."""

    def __init__(self, stats: StackStats, default_socket: Socket) -> None:
        super().__init__("socket", SOCKET_FOOTPRINT)
        self.stats = stats
        self.default_socket = default_socket

    def deliver(self, message: Message) -> list[Message]:
        socket: Socket = message.meta.get("socket", self.default_socket)
        chain: MbufChain = message.payload
        if socket.receive_buffer.append(chain):
            self.stats.delivered += 1
        else:
            self.stats.sobuf_full += 1
        return []


@dataclass
class TcpReceiveStack:
    """A fully wired TCP receive path.

    Attributes
    ----------
    layers:
        Bottom-to-top layer list, ready for any scheduler.
    receiver:
        The TCP engine (PCB table, stats).
    socket:
        The receiving socket.
    transmitted:
        Segments the stack emitted (ACKs, SYN-ACKs, RSTs).
    stats:
        Receive-path drop accounting.
    """

    layers: list[Layer]
    receiver: TcpReceiver
    socket: Socket
    transmitted: list[TcpHeader]
    stats: StackStats


def build_tcp_receive_stack(
    local_addr: str = "10.0.0.1", port: int = 4000
) -> TcpReceiveStack:
    """Build the canonical device→IP→TCP→socket receive stack."""
    addr = IPv4Address.parse(local_addr)
    stats = StackStats()
    receiver = TcpReceiver()
    receiver.listen(addr, port)
    socket = Socket(local_addr=local_addr, local_port=port)
    transmitted: list[TcpHeader] = []
    layers: list[Layer] = [
        DeviceLayer(stats),
        IpLayer(stats, addr),
        TcpLayer(stats, receiver, transmit=transmitted.append),
        SocketLayer(stats, socket),
    ]
    return TcpReceiveStack(
        layers=layers,
        receiver=receiver,
        socket=socket,
        transmitted=transmitted,
        stats=stats,
    )


def build_udp_receive_stack(
    local_addr: str = "10.0.0.1", ports: tuple[int, ...] = (53,)
) -> tuple[list[Layer], dict[int, Socket], StackStats]:
    """Build a device→IP→UDP→socket stack with one socket per port."""
    addr = IPv4Address.parse(local_addr)
    stats = StackStats()
    sockets = {
        port: Socket(local_addr=local_addr, local_port=port) for port in ports
    }
    default = next(iter(sockets.values()))
    layers: list[Layer] = [
        DeviceLayer(stats),
        IpLayer(stats, addr),
        UdpLayer(stats, sockets),
        SocketLayer(stats, default),
    ]
    return layers, sockets, stats
