"""The socket layer: receive buffers and process wakeup.

Models the pieces of ``soreceive``/``sbappend`` the traced path
exercises: a bounded socket receive buffer built from mbuf chains, a
sleeping reader, and wakeup notification.  Flow control mirrors
``sbspace``: appends beyond the high-water mark are rejected, which is
what TCP's advertised window would normally prevent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..buffers.mbuf import MbufChain
from ..errors import ProtocolError


@dataclass
class SocketBufferStats:
    appends: int = 0
    rejected: int = 0
    wakeups: int = 0
    reads: int = 0


class SocketBuffer:
    """A socket receive buffer (``so_rcv``).

    Parameters
    ----------
    hiwat:
        High-water mark in bytes; appends that would exceed it fail
        (the caller counts the drop, as TCP would have shrunk the
        window to prevent it).
    """

    def __init__(self, hiwat: int = 65536) -> None:
        if hiwat <= 0:
            raise ProtocolError(f"high-water mark must be positive, got {hiwat}")
        self.hiwat = hiwat
        self.chain = MbufChain()
        self.stats = SocketBufferStats()
        self._waiter: Callable[[], None] | None = None

    def __len__(self) -> int:
        return len(self.chain)

    @property
    def space(self) -> int:
        """Free space before the high-water mark (``sbspace``)."""
        return self.hiwat - len(self.chain)

    def append(self, data: MbufChain | bytes) -> bool:
        """``sbappend``: queue received data; False when out of space."""
        chain = (
            data if isinstance(data, MbufChain) else MbufChain.from_bytes(data, 0)
        )
        if len(chain) > self.space:
            self.stats.rejected += 1
            return False
        self.chain.append_chain(chain)
        self.stats.appends += 1
        self._wakeup()
        return True

    def read(self, count: int | None = None) -> bytes:
        """``soreceive``: remove up to ``count`` bytes (all when None)."""
        available = len(self.chain)
        take = available if count is None else min(count, available)
        self.stats.reads += 1
        return self.chain.strip(take)

    # ------------------------------------------------------------------
    # Sleep/wakeup

    def set_waiter(self, callback: Callable[[], None]) -> None:
        """Register a one-shot wakeup callback (``sbwait``)."""
        self._waiter = callback

    def _wakeup(self) -> None:
        """``sowakeup``: notify and clear the waiter."""
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            self.stats.wakeups += 1
            waiter()


@dataclass
class Socket:
    """A minimal socket: a receive buffer plus identity."""

    local_addr: str
    local_port: int
    receive_buffer: SocketBuffer = field(default_factory=SocketBuffer)

    def readable(self) -> bool:
        return len(self.receive_buffer) > 0
