"""IPv4 fragmentation and reassembly.

The traced path's fast case is "the message is addressed to the host
and is not a fragment"; this module supplies the slow path so the
substrate is complete: splitting outbound datagrams to an MTU and
reassembling inbound fragments (offset map with overlap handling and a
bounded fragment store, as ``ip_reass`` keeps a bounded queue).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ProtocolError
from .ip import FLAG_MF, IPv4Header

#: Fragment offsets are in units of 8 bytes.
FRAGMENT_UNIT = 8


def fragment_datagram(
    header: IPv4Header, payload: bytes, mtu: int
) -> list[bytes]:
    """Split one datagram into wire-ready fragments that fit ``mtu``.

    Returns serialized datagrams.  A payload that already fits yields a
    single unfragmented datagram; the DF flag raises instead of
    fragmenting, as a router must.
    """
    header_len = header.header_length
    if mtu < header_len + FRAGMENT_UNIT:
        raise ProtocolError(f"MTU {mtu} cannot carry any payload")
    if header_len + len(payload) <= mtu:
        whole = replace(header, total_length=header_len + len(payload))
        return [whole.serialize() + payload]
    if header.dont_fragment:
        raise ProtocolError("datagram needs fragmentation but DF is set")
    chunk = (mtu - header_len) // FRAGMENT_UNIT * FRAGMENT_UNIT
    fragments: list[bytes] = []
    offset = 0
    while offset < len(payload):
        piece = payload[offset : offset + chunk]
        last = offset + len(piece) >= len(payload)
        frag_header = replace(
            header,
            total_length=header_len + len(piece),
            flags=(header.flags & ~FLAG_MF) | (0 if last else FLAG_MF),
            fragment_offset=header.fragment_offset + offset,
        )
        fragments.append(frag_header.serialize() + piece)
        offset += len(piece)
    return fragments


#: Reassembly key: (src, dst, protocol, identification).
ReassemblyKey = tuple[str, str, int, int]


@dataclass
class _PartialDatagram:
    """Fragments collected so far for one datagram."""

    pieces: dict[int, bytes] = field(default_factory=dict)  # offset -> bytes
    total_length: int | None = None  # payload length, known at last frag
    first_header: IPv4Header | None = None
    bytes_held: int = 0

    def add(self, header: IPv4Header, payload: bytes) -> None:
        offset = header.fragment_offset
        if offset % FRAGMENT_UNIT and header.flags & FLAG_MF:
            raise ProtocolError("non-final fragment with misaligned offset")
        if not header.flags & FLAG_MF:
            end = offset + len(payload)
            if self.total_length is not None and self.total_length != end:
                raise ProtocolError("conflicting datagram lengths")
            self.total_length = end
        if offset == 0:
            self.first_header = header
        previous = self.pieces.get(offset)
        if previous is None or len(payload) > len(previous):
            if previous is not None:
                self.bytes_held -= len(previous)
            self.pieces[offset] = payload
            self.bytes_held += len(payload)

    def try_assemble(self) -> bytes | None:
        """Return the full payload if every hole is filled."""
        if self.total_length is None or self.first_header is None:
            return None
        out = bytearray(self.total_length)
        covered = 0
        position = 0
        for offset in sorted(self.pieces):
            piece = self.pieces[offset]
            if offset > position:
                return None  # hole
            usable = piece[max(0, position - offset):]
            end = min(offset + len(piece), self.total_length)
            if end <= position:
                continue  # fully-overlapped duplicate
            out[position:end] = usable[: end - position]
            covered += end - position
            position = end
        if position < self.total_length:
            return None
        return bytes(out)


class Reassembler:
    """Bounded IPv4 reassembly queue.

    Parameters
    ----------
    max_datagrams:
        Concurrent partial datagrams held; the oldest is evicted when a
        new key arrives at the limit (memory pressure behaviour).
    max_bytes_per_datagram:
        A cap against fragment floods.
    """

    def __init__(
        self, max_datagrams: int = 16, max_bytes_per_datagram: int = 65535
    ) -> None:
        if max_datagrams <= 0:
            raise ProtocolError("reassembler needs capacity for one datagram")
        self.max_datagrams = max_datagrams
        self.max_bytes = max_bytes_per_datagram
        self._partials: dict[ReassemblyKey, _PartialDatagram] = {}
        self.completed = 0
        self.evicted = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._partials)

    @staticmethod
    def key_of(header: IPv4Header) -> ReassemblyKey:
        return (
            str(header.src),
            str(header.dst),
            header.protocol,
            header.identification,
        )

    def accept(
        self, header: IPv4Header, payload: bytes
    ) -> tuple[IPv4Header, bytes] | None:
        """Feed one fragment; returns (header, payload) when complete."""
        key = self.key_of(header)
        partial = self._partials.get(key)
        if partial is None:
            if len(self._partials) >= self.max_datagrams:
                oldest = next(iter(self._partials))
                del self._partials[oldest]
                self.evicted += 1
            partial = _PartialDatagram()
            self._partials[key] = partial
        if partial.bytes_held + len(payload) > self.max_bytes:
            del self._partials[key]
            self.rejected += 1
            return None
        try:
            partial.add(header, payload)
        except ProtocolError:
            del self._partials[key]
            self.rejected += 1
            return None
        assembled = partial.try_assemble()
        if assembled is None:
            return None
        del self._partials[key]
        self.completed += 1
        base = partial.first_header
        assert base is not None
        whole = replace(
            base,
            total_length=base.header_length + len(assembled),
            flags=base.flags & ~FLAG_MF,
            fragment_offset=0,
        )
        return whole, assembled
