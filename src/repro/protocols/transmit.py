"""The transmit side: socket send → TCP output → IP output → Ethernet.

The paper concentrates on receive-side processing but notes "the
techniques presented are also applicable to transmit-side processing".
This module builds the downward path as schedulable layers — the same
LDLP machinery runs unchanged, because a scheduler only sees an ordered
list of layers.

Layers (top first, since messages enter at the socket and exit at the
wire): :class:`TcpOutputLayer` → :class:`IpOutputLayer` →
:class:`EtherOutputLayer`.  The output of the bottom layer is a fully
valid Ethernet frame; tests loop it straight back into the receive
stack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..buffers.mbuf import MbufChain
from ..core.layer import Layer, LayerFootprint, Message
from ..errors import ProtocolError
from . import ethernet
from .ethernet import ETHERTYPE_IP, MacAddress
from .ip import IPv4Address, IPv4Header, PROTO_TCP
from .tcp import DEFAULT_MSS, FLAG_ACK, FLAG_PSH, TcpHeader, seq_add

#: Table-1-informed output footprints (tcp_output 4872 B, ip_output
#: 5120 B, ether_output + lestart ≈ 5456 B of catalogued code).
TCP_OUT_FOOTPRINT = LayerFootprint(
    code_bytes=4872, data_bytes=512, base_cycles=450.0, per_byte_cycles=1.0
)
IP_OUT_FOOTPRINT = LayerFootprint(
    code_bytes=5120, data_bytes=384, base_cycles=300.0, per_byte_cycles=0.0
)
ETHER_OUT_FOOTPRINT = LayerFootprint(
    code_bytes=5456, data_bytes=512, base_cycles=350.0, per_byte_cycles=0.5
)


@dataclass
class TransmitConnection:
    """Sender-side connection state (the sending half of a PCB)."""

    src: IPv4Address
    dst: IPv4Address
    src_port: int
    dst_port: int
    snd_nxt: int = 0x7000
    rcv_nxt: int = 0
    mss: int = DEFAULT_MSS


@dataclass
class TransmitStats:
    sends: int = 0
    segments_out: int = 0
    datagrams_out: int = 0
    frames_out: int = 0
    oversize_rejected: int = 0


class TcpOutputLayer(Layer):
    """``tcp_output``: segmentize application data onto a connection.

    Input messages carry application payload bytes (or an
    :class:`~repro.buffers.MbufChain`) plus ``meta['connection']``; the
    layer cuts MSS-sized segments, stamps sequence numbers, and emits
    one message per segment carrying a serialized TCP segment.
    """

    def __init__(self, stats: TransmitStats) -> None:
        super().__init__("tcp-output", TCP_OUT_FOOTPRINT)
        self.stats = stats

    def deliver(self, message: Message) -> list[Message]:
        connection: TransmitConnection = message.meta["connection"]
        payload = message.payload
        if isinstance(payload, MbufChain):
            payload = bytes(payload)
        self.stats.sends += 1
        segments: list[Message] = []
        offset = 0
        while offset < len(payload) or not segments:
            chunk = payload[offset : offset + connection.mss]
            offset += len(chunk)
            push = offset >= len(payload)
            header = TcpHeader(
                src_port=connection.src_port,
                dst_port=connection.dst_port,
                seq=connection.snd_nxt,
                ack=connection.rcv_nxt,
                flags=FLAG_ACK | (FLAG_PSH if push else 0),
            )
            connection.snd_nxt = seq_add(connection.snd_nxt, len(chunk))
            wire = header.serialize(
                chunk, src=connection.src, dst=connection.dst
            )
            segment = Message(payload=wire, size=len(wire))
            segment.meta["connection"] = connection
            segments.append(segment)
            self.stats.segments_out += 1
            if offset >= len(payload):
                break
        return segments


class IpOutputLayer(Layer):
    """``ip_output``: wrap each segment in an IPv4 header (checksummed)."""

    def __init__(self, stats: TransmitStats, ttl: int = 64) -> None:
        super().__init__("ip-output", IP_OUT_FOOTPRINT)
        self.stats = stats
        self.ttl = ttl
        self._ident = itertools.count(1)

    def deliver(self, message: Message) -> list[Message]:
        connection: TransmitConnection = message.meta["connection"]
        segment = message.payload
        if isinstance(segment, MbufChain):
            segment = bytes(segment)
        header = IPv4Header(
            src=connection.src,
            dst=connection.dst,
            protocol=PROTO_TCP,
            total_length=20 + len(segment),
            identification=next(self._ident) & 0xFFFF,
            ttl=self.ttl,
        )
        message.payload = header.serialize() + segment
        message.size = len(message.payload)
        self.stats.datagrams_out += 1
        return [message]


class EtherOutputLayer(Layer):
    """``ether_output`` + driver: frame the datagram for the wire."""

    def __init__(
        self,
        stats: TransmitStats,
        src_mac: MacAddress,
        dst_mac: MacAddress,
        transmit=None,
    ) -> None:
        super().__init__("ether-output", ETHER_OUT_FOOTPRINT)
        self.stats = stats
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.transmit = transmit or (lambda frame: None)

    def deliver(self, message: Message) -> list[Message]:
        datagram = message.payload
        if isinstance(datagram, MbufChain):
            datagram = bytes(datagram)
        try:
            frame = ethernet.frame(
                self.dst_mac, self.src_mac, ETHERTYPE_IP, datagram
            )
        except ProtocolError:
            self.stats.oversize_rejected += 1
            return []
        message.payload = frame
        message.size = len(frame)
        self.stats.frames_out += 1
        self.transmit(frame)
        return [message]


@dataclass
class TcpTransmitStack:
    """A wired-up transmit path.

    ``layers`` runs top (socket side) to bottom (wire side); ``wire``
    collects emitted frames.
    """

    layers: list[Layer]
    connection: TransmitConnection
    stats: TransmitStats
    wire: list[bytes]

    def send(self, payload: bytes) -> Message:
        """Package application bytes as an input message for the stack."""
        message = Message(payload=payload, size=len(payload))
        message.meta["connection"] = self.connection
        return message


def build_tcp_transmit_stack(
    src: str = "10.0.0.9",
    dst: str = "10.0.0.1",
    src_port: int = 7777,
    dst_port: int = 4000,
    iss: int = 0x7000,
    mss: int = DEFAULT_MSS,
    src_mac: str = "02:00:00:00:00:01",
    dst_mac: str = "02:00:00:00:00:02",
) -> TcpTransmitStack:
    """Build the TCP output → IP output → Ethernet output stack."""
    stats = TransmitStats()
    connection = TransmitConnection(
        src=IPv4Address.parse(src),
        dst=IPv4Address.parse(dst),
        src_port=src_port,
        dst_port=dst_port,
        snd_nxt=iss,
        mss=mss,
    )
    wire: list[bytes] = []
    layers: list[Layer] = [
        TcpOutputLayer(stats),
        IpOutputLayer(stats),
        EtherOutputLayer(
            stats,
            src_mac=MacAddress.parse(src_mac),
            dst_mac=MacAddress.parse(dst_mac),
            transmit=wire.append,
        ),
    ]
    return TcpTransmitStack(
        layers=layers, connection=connection, stats=stats, wire=wire
    )
