"""IPv4: header parse/serialize, checksum, fragmentation checks.

Implements the receive-side work ``ipintr`` does in the traced path:
validate version/length/checksum, check the destination, detect
fragments, and dispatch on protocol.  Options are carried opaquely.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import ChecksumError, ProtocolError
from .checksum import internet_checksum

MIN_HEADER_LEN = 20
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_FIXED = struct.Struct("!BBHHHBBH4s4s")

#: Flags field bits (in the flags/fragment-offset word).
FLAG_DF = 0x4000
FLAG_MF = 0x2000
OFFSET_MASK = 0x1FFF


@dataclass(frozen=True)
class IPv4Address:
    """A 32-bit IPv4 address."""

    octets: bytes

    def __post_init__(self) -> None:
        if len(self.octets) != 4:
            raise ProtocolError(f"IPv4 address needs 4 octets, got {len(self.octets)}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise ProtocolError(f"malformed IPv4 address {text!r}")
        try:
            octets = bytes(int(part) for part in parts)
        except ValueError as exc:
            raise ProtocolError(f"malformed IPv4 address {text!r}") from exc
        return cls(octets)

    def __str__(self) -> str:
        return ".".join(str(octet) for octet in self.octets)

    @property
    def is_broadcast(self) -> bool:
        return self.octets == b"\xff\xff\xff\xff"

    @property
    def is_multicast(self) -> bool:
        return 224 <= self.octets[0] <= 239


@dataclass(frozen=True)
class IPv4Header:
    """A parsed IPv4 header."""

    src: IPv4Address
    dst: IPv4Address
    protocol: int
    total_length: int
    identification: int = 0
    ttl: int = 64
    tos: int = 0
    flags: int = 0
    fragment_offset: int = 0
    options: bytes = b""

    @property
    def header_length(self) -> int:
        return MIN_HEADER_LEN + len(self.options)

    @property
    def payload_length(self) -> int:
        return self.total_length - self.header_length

    @property
    def is_fragment(self) -> bool:
        """True for any fragment (MF set, or nonzero offset)."""
        return bool(self.flags & FLAG_MF) or self.fragment_offset != 0

    @property
    def dont_fragment(self) -> bool:
        return bool(self.flags & FLAG_DF)

    @classmethod
    def parse(cls, data: bytes | memoryview, verify: bool = True) -> "IPv4Header":
        data = bytes(data)
        if len(data) < MIN_HEADER_LEN:
            raise ProtocolError(f"IPv4 header needs 20 bytes, got {len(data)}")
        (vhl, tos, total_length, identification, frag_word, ttl, protocol,
         checksum, src, dst) = _FIXED.unpack_from(data)
        version = vhl >> 4
        if version != 4:
            raise ProtocolError(f"IP version {version} is not 4")
        ihl = (vhl & 0x0F) * 4
        if ihl < MIN_HEADER_LEN:
            raise ProtocolError(f"IHL {ihl} below minimum header length")
        if len(data) < ihl:
            raise ProtocolError(f"truncated IPv4 header: need {ihl}, got {len(data)}")
        if total_length < ihl:
            raise ProtocolError(
                f"total length {total_length} below header length {ihl}"
            )
        if verify and internet_checksum(data[:ihl]) != 0:
            raise ChecksumError("IPv4 header checksum failed")
        options = data[MIN_HEADER_LEN:ihl]
        return cls(
            src=IPv4Address(src),
            dst=IPv4Address(dst),
            protocol=protocol,
            total_length=total_length,
            identification=identification,
            ttl=ttl,
            tos=tos,
            flags=frag_word & ~OFFSET_MASK,
            fragment_offset=(frag_word & OFFSET_MASK) * 8,
            options=options,
        )

    def serialize(self) -> bytes:
        """Serialize with a correct header checksum."""
        if len(self.options) % 4:
            raise ProtocolError("IPv4 options must be padded to 32-bit words")
        if self.fragment_offset % 8:
            raise ProtocolError("fragment offset must be a multiple of 8")
        ihl = self.header_length // 4
        frag_word = (self.flags & ~OFFSET_MASK) | (self.fragment_offset // 8)
        without_checksum = _FIXED.pack(
            (4 << 4) | ihl,
            self.tos,
            self.total_length,
            self.identification,
            frag_word,
            self.ttl,
            self.protocol,
            0,
            self.src.octets,
            self.dst.octets,
        ) + self.options
        checksum = internet_checksum(without_checksum)
        return (
            without_checksum[:10]
            + struct.pack("!H", checksum)
            + without_checksum[12:]
        )


def build_datagram(header_fields: IPv4Header, payload: bytes) -> bytes:
    """Serialize a full datagram, fixing up ``total_length``."""
    from dataclasses import replace

    header = replace(
        header_fields,
        total_length=header_fields.header_length + len(payload),
    )
    return header.serialize() + payload


def pseudo_header(src: IPv4Address, dst: IPv4Address, protocol: int, length: int) -> bytes:
    """The TCP/UDP checksum pseudo-header."""
    return src.octets + dst.octets + struct.pack("!BBH", 0, protocol, length)
