"""Ethernet framing (the device layer's protocol).

Real byte-level parse/serialize for the 14-byte DIX header.  The frame
check sequence is assumed verified/added by the adaptor, as on the Lance
Ethernet hardware in the paper's testbed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import ProtocolError

HEADER_LEN = 14
ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806
MIN_PAYLOAD = 46
MAX_PAYLOAD = 1500

_HEADER = struct.Struct("!6s6sH")


@dataclass(frozen=True)
class MacAddress:
    """A 48-bit MAC address."""

    octets: bytes

    def __post_init__(self) -> None:
        if len(self.octets) != 6:
            raise ProtocolError(f"MAC address needs 6 octets, got {len(self.octets)}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` notation."""
        parts = text.split(":")
        if len(parts) != 6:
            raise ProtocolError(f"malformed MAC address {text!r}")
        try:
            return cls(bytes(int(part, 16) for part in parts))
        except ValueError as exc:
            raise ProtocolError(f"malformed MAC address {text!r}") from exc

    def __str__(self) -> str:
        return ":".join(f"{octet:02x}" for octet in self.octets)

    @property
    def is_broadcast(self) -> bool:
        return self.octets == b"\xff" * 6

    @property
    def is_multicast(self) -> bool:
        return bool(self.octets[0] & 0x01)


BROADCAST = MacAddress(b"\xff" * 6)


@dataclass(frozen=True)
class EthernetHeader:
    """A parsed Ethernet (DIX) header."""

    dst: MacAddress
    src: MacAddress
    ethertype: int

    @classmethod
    def parse(cls, data: bytes | memoryview) -> "EthernetHeader":
        if len(data) < HEADER_LEN:
            raise ProtocolError(
                f"Ethernet header needs {HEADER_LEN} bytes, got {len(data)}"
            )
        dst, src, ethertype = _HEADER.unpack_from(bytes(data[:HEADER_LEN]))
        if ethertype < 0x0600:
            raise ProtocolError(
                f"802.3 length field {ethertype:#06x} is not a supported ethertype"
            )
        return cls(MacAddress(dst), MacAddress(src), ethertype)

    def serialize(self) -> bytes:
        return _HEADER.pack(self.dst.octets, self.src.octets, self.ethertype)


def frame(dst: MacAddress, src: MacAddress, ethertype: int, payload: bytes) -> bytes:
    """Build a frame; pads short payloads to the Ethernet minimum."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds Ethernet maximum {MAX_PAYLOAD}"
        )
    body = payload
    if len(body) < MIN_PAYLOAD:
        body = body + b"\x00" * (MIN_PAYLOAD - len(body))
    return EthernetHeader(dst, src, ethertype).serialize() + body
