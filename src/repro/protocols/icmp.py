"""ICMP: echo request/reply and error messages.

The paper's opening list of signalling protocols — "ubiquitous in the
Internet: DNS, ICMP, IGMP, TCP's connection control messages" — makes
ICMP a canonical small-message workload.  This module implements the
wire format (RFC 792) for echo and the common error types, plus an
:class:`IcmpLayer` that answers pings, giving the receive stack a
second real transport to schedule.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..buffers.mbuf import MbufChain
from ..core.layer import Layer, LayerFootprint, Message
from ..errors import ChecksumError, ProtocolError
from .checksum import internet_checksum

HEADER_LEN = 8
_HEADER = struct.Struct("!BBHHH")


class IcmpType(enum.IntEnum):
    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


@dataclass(frozen=True)
class IcmpMessage:
    """A parsed ICMP message.

    For echo types, ``rest`` packs (identifier, sequence); for errors it
    is opaque and ``payload`` carries the quoted datagram.
    """

    icmp_type: int
    code: int
    identifier: int
    sequence: int
    payload: bytes = b""

    @classmethod
    def echo_request(
        cls, identifier: int, sequence: int, payload: bytes = b""
    ) -> "IcmpMessage":
        return cls(IcmpType.ECHO_REQUEST, 0, identifier, sequence, payload)

    @classmethod
    def echo_reply_to(cls, request: "IcmpMessage") -> "IcmpMessage":
        """The reply a host generates: same id/seq/payload, type 0."""
        if request.icmp_type != IcmpType.ECHO_REQUEST:
            raise ProtocolError("can only reply to an echo request")
        return cls(
            IcmpType.ECHO_REPLY,
            0,
            request.identifier,
            request.sequence,
            request.payload,
        )

    def serialize(self) -> bytes:
        unsummed = _HEADER.pack(
            self.icmp_type, self.code, 0, self.identifier, self.sequence
        ) + self.payload
        checksum = internet_checksum(unsummed)
        return unsummed[:2] + struct.pack("!H", checksum) + unsummed[4:]

    @classmethod
    def parse(cls, data: bytes | memoryview, verify: bool = True) -> "IcmpMessage":
        data = bytes(data)
        if len(data) < HEADER_LEN:
            raise ProtocolError(f"ICMP needs {HEADER_LEN} bytes, got {len(data)}")
        if verify and internet_checksum(data) != 0:
            raise ChecksumError("ICMP checksum failed")
        icmp_type, code, _checksum, identifier, sequence = _HEADER.unpack_from(data)
        return cls(icmp_type, code, identifier, sequence, data[HEADER_LEN:])


#: tcp_input-scale footprint is overkill for ICMP; the layer is small
#: but the path still drags in IP, buffers, and the device driver.
ICMP_FOOTPRINT = LayerFootprint(
    code_bytes=1536, data_bytes=128, base_cycles=150.0, per_byte_cycles=0.25
)


class IcmpLayer(Layer):
    """``icmp_input``: answer echo requests, count everything else."""

    def __init__(self, stats, transmit=None) -> None:
        super().__init__("icmp", ICMP_FOOTPRINT)
        self.stats = stats
        self.transmit = transmit or (lambda message, peer: None)
        self.echo_requests = 0
        self.echo_replies_sent = 0
        self.errors_received = 0

    def deliver(self, message: Message) -> list[Message]:
        chain: MbufChain = message.payload
        try:
            icmp = IcmpMessage.parse(bytes(chain))
        except ProtocolError:
            self.stats.bad_transport += 1
            return []
        ip_header = message.meta["ip"]
        if icmp.icmp_type == IcmpType.ECHO_REQUEST:
            self.echo_requests += 1
            reply = IcmpMessage.echo_reply_to(icmp)
            self.echo_replies_sent += 1
            self.transmit(reply, ip_header.src)
            return []
        if icmp.icmp_type in (IcmpType.DEST_UNREACHABLE, IcmpType.TIME_EXCEEDED):
            self.errors_received += 1
            message.meta["icmp"] = icmp
            return [message]
        # Echo replies and everything else flow up for sockets to match.
        message.meta["icmp"] = icmp
        return [message]
