"""DNS wire format and a tiny authoritative server.

DNS is the first small-message protocol the paper names.  This module
implements the RFC 1035 wire format for real — header, questions,
resource records, and name compression on both encode and decode (with
pointer-loop protection) — plus :class:`DnsZone`, a minimal
authoritative responder used by the examples as an application on top
of the UDP receive stack.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..errors import ProtocolError

HEADER_LEN = 12
_HEADER = struct.Struct("!HHHHHH")

#: Flag bits within the second header word.
FLAG_QR = 0x8000  # response
FLAG_AA = 0x0400  # authoritative answer
FLAG_RD = 0x0100  # recursion desired
FLAG_RA = 0x0080  # recursion available
RCODE_MASK = 0x000F

MAX_NAME_LEN = 255
MAX_LABEL_LEN = 63


class RecordType(enum.IntEnum):
    A = 1
    NS = 2
    CNAME = 5
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28


class Rcode(enum.IntEnum):
    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


def _validate_name(name: str) -> tuple[str, ...]:
    name = name.rstrip(".").lower()
    if not name:
        return ()
    labels = tuple(name.split("."))
    total = sum(len(label) + 1 for label in labels) + 1
    if total > MAX_NAME_LEN:
        raise ProtocolError(f"name {name!r} exceeds {MAX_NAME_LEN} bytes")
    for label in labels:
        if not label or len(label) > MAX_LABEL_LEN:
            raise ProtocolError(f"bad label {label!r} in {name!r}")
    return labels


class NameEncoder:
    """Encodes domain names with RFC 1035 compression pointers."""

    def __init__(self) -> None:
        #: suffix tuple -> offset of its first encoding
        self._seen: dict[tuple[str, ...], int] = {}

    def encode(self, name: str, offset: int) -> bytes:
        """Encode ``name`` for placement at byte ``offset``."""
        labels = _validate_name(name)
        out = bytearray()
        index = 0
        while index < len(labels):
            suffix = labels[index:]
            pointer = self._seen.get(suffix)
            if pointer is not None and pointer < 0x4000:
                out += struct.pack("!H", 0xC000 | pointer)
                return bytes(out)
            current = offset + len(out)
            if current < 0x4000:
                self._seen[suffix] = current
            label = labels[index].encode("ascii")
            out.append(len(label))
            out += label
            index += 1
        out.append(0)
        return bytes(out)


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next offset).

    Follows compression pointers with loop protection; the returned
    offset is the position after the name *in the original stream*
    (i.e. after the pointer if one was taken).
    """
    labels: list[str] = []
    jumps = 0
    next_offset: int | None = None
    position = offset
    while True:
        if position >= len(data):
            raise ProtocolError("truncated name")
        length = data[position]
        if length & 0xC0 == 0xC0:
            if position + 1 >= len(data):
                raise ProtocolError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[position + 1]
            if next_offset is None:
                next_offset = position + 2
            jumps += 1
            if jumps > 64:
                raise ProtocolError("compression pointer loop")
            if pointer >= position:
                raise ProtocolError("forward compression pointer")
            position = pointer
            continue
        if length & 0xC0:
            raise ProtocolError(f"reserved label type {length:#04x}")
        position += 1
        if length == 0:
            break
        if position + length > len(data):
            raise ProtocolError("truncated label")
        labels.append(data[position : position + length].decode("ascii"))
        position += length
        if sum(len(l) + 1 for l in labels) > MAX_NAME_LEN:
            raise ProtocolError("decoded name too long")
    if next_offset is None:
        next_offset = position
    return ".".join(labels), next_offset


@dataclass(frozen=True)
class Question:
    name: str
    qtype: int = RecordType.A
    qclass: int = 1  # IN


@dataclass(frozen=True)
class ResourceRecord:
    name: str
    rtype: int
    ttl: int
    rdata: bytes
    rclass: int = 1

    @classmethod
    def a(cls, name: str, address: str, ttl: int = 300) -> "ResourceRecord":
        from .ip import IPv4Address

        return cls(name, RecordType.A, ttl, IPv4Address.parse(address).octets)

    @property
    def address(self) -> str:
        """Dotted-quad view of an A record's rdata."""
        if self.rtype != RecordType.A or len(self.rdata) != 4:
            raise ProtocolError("not an A record")
        return ".".join(str(octet) for octet in self.rdata)


@dataclass(frozen=True)
class DnsMessage:
    """A DNS query or response."""

    ident: int
    flags: int = 0
    questions: tuple[Question, ...] = ()
    answers: tuple[ResourceRecord, ...] = ()
    authorities: tuple[ResourceRecord, ...] = ()
    additionals: tuple[ResourceRecord, ...] = ()

    @property
    def is_response(self) -> bool:
        return bool(self.flags & FLAG_QR)

    @property
    def rcode(self) -> int:
        return self.flags & RCODE_MASK

    @classmethod
    def query(cls, ident: int, name: str, qtype: int = RecordType.A) -> "DnsMessage":
        return cls(
            ident=ident,
            flags=FLAG_RD,
            questions=(Question(name, qtype),),
        )

    # ------------------------------------------------------------------
    # Encoding

    def serialize(self) -> bytes:
        out = bytearray(
            _HEADER.pack(
                self.ident,
                self.flags,
                len(self.questions),
                len(self.answers),
                len(self.authorities),
                len(self.additionals),
            )
        )
        encoder = NameEncoder()
        for question in self.questions:
            out += encoder.encode(question.name, len(out))
            out += struct.pack("!HH", question.qtype, question.qclass)
        for record in self.answers + self.authorities + self.additionals:
            out += encoder.encode(record.name, len(out))
            out += struct.pack(
                "!HHIH", record.rtype, record.rclass, record.ttl, len(record.rdata)
            )
            out += record.rdata
        return bytes(out)

    # ------------------------------------------------------------------
    # Decoding

    @classmethod
    def parse(cls, data: bytes | memoryview) -> "DnsMessage":
        data = bytes(data)
        if len(data) < HEADER_LEN:
            raise ProtocolError(f"DNS needs {HEADER_LEN} header bytes")
        ident, flags, qd, an, ns, ar = _HEADER.unpack_from(data)
        offset = HEADER_LEN
        questions: list[Question] = []
        for _ in range(qd):
            name, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise ProtocolError("truncated question")
            qtype, qclass = struct.unpack_from("!HH", data, offset)
            offset += 4
            questions.append(Question(name, qtype, qclass))

        def parse_records(count: int, offset: int):
            records: list[ResourceRecord] = []
            for _ in range(count):
                name, offset = decode_name(data, offset)
                if offset + 10 > len(data):
                    raise ProtocolError("truncated resource record")
                rtype, rclass, ttl, rdlength = struct.unpack_from(
                    "!HHIH", data, offset
                )
                offset += 10
                if offset + rdlength > len(data):
                    raise ProtocolError("truncated rdata")
                records.append(
                    ResourceRecord(
                        name, rtype, ttl, data[offset : offset + rdlength], rclass
                    )
                )
                offset += rdlength
            return tuple(records), offset

        answers, offset = parse_records(an, offset)
        authorities, offset = parse_records(ns, offset)
        additionals, offset = parse_records(ar, offset)
        return cls(
            ident=ident,
            flags=flags,
            questions=tuple(questions),
            answers=answers,
            authorities=authorities,
            additionals=additionals,
        )


class DnsZone:
    """A tiny authoritative zone: name → list of records.

    :meth:`answer` implements the response logic a stub authoritative
    server needs: match the question name and type (following CNAME
    chains), NXDOMAIN for unknown names, NOTIMP for unsupported opcodes.
    """

    def __init__(self) -> None:
        self._records: dict[str, list[ResourceRecord]] = {}
        self.queries = 0
        self.nxdomains = 0

    def add(self, record: ResourceRecord) -> None:
        key = record.name.rstrip(".").lower()
        self._records.setdefault(key, []).append(record)

    def add_a(self, name: str, address: str, ttl: int = 300) -> None:
        self.add(ResourceRecord.a(name, address, ttl))

    def lookup(self, name: str, rtype: int) -> list[ResourceRecord]:
        return [
            record
            for record in self._records.get(name.rstrip(".").lower(), [])
            if record.rtype == rtype
        ]

    def answer(self, query: DnsMessage) -> DnsMessage:
        """Build the response to one query message."""
        self.queries += 1
        base_flags = FLAG_QR | FLAG_AA | (query.flags & FLAG_RD)
        if query.is_response or not query.questions:
            return DnsMessage(
                ident=query.ident,
                flags=base_flags | Rcode.FORMERR,
                questions=query.questions,
            )
        question = query.questions[0]
        answers: list[ResourceRecord] = []
        name = question.name
        for _ in range(8):  # bounded CNAME chase
            direct = self.lookup(name, question.qtype)
            if direct:
                answers.extend(direct)
                break
            cnames = self.lookup(name, RecordType.CNAME)
            if not cnames:
                break
            answers.extend(cnames)
            name = cnames[0].rdata.decode("ascii")
        if answers:
            rcode = Rcode.NOERROR
        elif self._records.get(question.name.rstrip(".").lower()):
            rcode = Rcode.NOERROR  # name exists, no data of that type
        else:
            rcode = Rcode.NXDOMAIN
            self.nxdomains += 1
        return DnsMessage(
            ident=query.ident,
            flags=base_flags | rcode,
            questions=query.questions,
            answers=tuple(answers),
        )
