"""IP forwarding: the per-hop router path.

The paper's motivation is switches deployed "like IP routers", where
per-message processing time bounds the whole network's signalling
capacity.  This module implements the forwarding fast path as
schedulable layers: validate, look up the next hop (longest-prefix
match), decrement TTL with the RFC 1624 *incremental* checksum update
(no full header re-checksum), and re-frame for the outbound link.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..buffers.mbuf import MbufChain
from ..core.layer import Layer, LayerFootprint, Message
from ..errors import ProtocolError
from . import ethernet
from .checksum import incremental_checksum_update
from .ethernet import ETHERTYPE_IP, MacAddress
from .ip import IPv4Address, IPv4Header


@dataclass(frozen=True)
class Route:
    """One forwarding-table entry."""

    prefix: int  # network byte order, host-int form
    prefix_len: int
    next_hop_mac: MacAddress
    interface: str = "eth0"

    @classmethod
    def parse(cls, cidr: str, next_hop_mac: str, interface: str = "eth0") -> "Route":
        try:
            network, length_text = cidr.split("/")
            length = int(length_text)
        except ValueError as exc:
            raise ProtocolError(f"malformed CIDR {cidr!r}") from exc
        if not 0 <= length <= 32:
            raise ProtocolError(f"prefix length {length} out of range")
        address = IPv4Address.parse(network)
        prefix = int.from_bytes(address.octets, "big")
        mask = 0xFFFFFFFF << (32 - length) & 0xFFFFFFFF if length else 0
        return cls(prefix & mask, length, MacAddress.parse(next_hop_mac), interface)

    def matches(self, address: IPv4Address) -> bool:
        value = int.from_bytes(address.octets, "big")
        if self.prefix_len == 0:
            return True
        mask = 0xFFFFFFFF << (32 - self.prefix_len) & 0xFFFFFFFF
        return (value & mask) == self.prefix


class RoutingTable:
    """Longest-prefix-match forwarding table."""

    def __init__(self) -> None:
        self._routes: list[Route] = []
        self.lookups = 0
        self.misses = 0

    def add(self, cidr: str, next_hop_mac: str, interface: str = "eth0") -> Route:
        route = Route.parse(cidr, next_hop_mac, interface)
        self._routes.append(route)
        self._routes.sort(key=lambda r: -r.prefix_len)
        return route

    def lookup(self, address: IPv4Address) -> Route | None:
        self.lookups += 1
        for route in self._routes:  # sorted longest prefix first
            if route.matches(address):
                return route
        self.misses += 1
        return None

    def __len__(self) -> int:
        return len(self._routes)


@dataclass
class ForwardingStats:
    frames_in: int = 0
    forwarded: int = 0
    no_route: int = 0
    ttl_expired: int = 0
    bad: int = 0


#: Forwarding path footprints: validation+LPM is the big one.
FORWARD_FOOTPRINT = LayerFootprint(
    code_bytes=3584, data_bytes=1024, base_cycles=350.0, per_byte_cycles=0.0
)


class IpForwardLayer(Layer):
    """``ip_forward``: TTL, route lookup, incremental checksum fix-up.

    Consumes messages whose ``meta['ip']`` was set by the receive-side
    :class:`~repro.protocols.stack.IpLayer` operating in router mode;
    here we parse straight off the wire bytes for a self-contained
    forwarding stack.
    """

    def __init__(self, stats: ForwardingStats, table: RoutingTable) -> None:
        super().__init__("ip-forward", FORWARD_FOOTPRINT)
        self.stats = stats
        self.table = table

    def deliver(self, message: Message) -> list[Message]:
        chain: MbufChain = message.payload
        datagram = bytearray(bytes(chain))
        try:
            header = IPv4Header.parse(datagram[: min(len(datagram), 60)])
        except ProtocolError:
            self.stats.bad += 1
            return []
        if header.ttl <= 1:
            # A real router emits ICMP time-exceeded; we count it.
            self.stats.ttl_expired += 1
            return []
        route = self.table.lookup(header.dst)
        if route is None:
            self.stats.no_route += 1
            return []
        # Decrement TTL in place and patch the checksum incrementally
        # (RFC 1624) — the whole point is not re-summing the header.
        old_word = (header.ttl << 8) | header.protocol
        new_word = ((header.ttl - 1) << 8) | header.protocol
        old_checksum = struct.unpack_from("!H", datagram, 10)[0]
        new_checksum = incremental_checksum_update(
            old_checksum, old_word, new_word
        )
        datagram[8] = header.ttl - 1
        struct.pack_into("!H", datagram, 10, new_checksum)
        message.payload = MbufChain.from_bytes(
            bytes(datagram[: header.total_length]), leading_space=16
        )
        message.meta["route"] = route
        return [message]


class RewriteLayer(Layer):
    """``ether_output`` for the router: new link header, out the port."""

    def __init__(
        self,
        stats: ForwardingStats,
        router_mac: MacAddress,
        transmit=None,
    ) -> None:
        super().__init__(
            "rewrite",
            LayerFootprint(code_bytes=2560, data_bytes=256,
                           base_cycles=200.0, per_byte_cycles=0.5),
        )
        self.stats = stats
        self.router_mac = router_mac
        self.transmit = transmit or (lambda frame, route: None)

    def deliver(self, message: Message) -> list[Message]:
        route: Route = message.meta["route"]
        datagram = bytes(message.payload)
        frame = ethernet.frame(
            route.next_hop_mac, self.router_mac, ETHERTYPE_IP, datagram
        )
        self.stats.forwarded += 1
        self.transmit(frame, route)
        message.payload = frame
        message.size = len(frame)
        return [message]


class RouterDeviceLayer(Layer):
    """Inbound link: strip the Ethernet header, count the frame."""

    def __init__(self, stats: ForwardingStats) -> None:
        super().__init__(
            "router-device",
            LayerFootprint(code_bytes=4480, data_bytes=1536,
                           base_cycles=300.0, per_byte_cycles=0.5),
        )
        self.stats = stats

    def deliver(self, message: Message) -> list[Message]:
        self.stats.frames_in += 1
        frame = message.payload
        if isinstance(frame, MbufChain):
            frame = bytes(frame)
        try:
            header = ethernet.EthernetHeader.parse(frame)
        except ProtocolError:
            self.stats.bad += 1
            return []
        if header.ethertype != ETHERTYPE_IP:
            self.stats.bad += 1
            return []
        chain = MbufChain.from_bytes(frame, leading_space=16)
        chain.strip(ethernet.HEADER_LEN)
        message.payload = chain
        return [message]


@dataclass
class ForwardingPath:
    """A wired-up three-layer forwarding path."""

    layers: list[Layer]
    table: RoutingTable
    stats: ForwardingStats
    transmitted: list[tuple[bytes, Route]]


def build_forwarding_path(
    router_mac: str = "02:00:00:00:0f:01",
    routes: list[tuple[str, str]] | None = None,
) -> ForwardingPath:
    """Build device → ip_forward → rewrite with an optional route list."""
    stats = ForwardingStats()
    table = RoutingTable()
    for cidr, mac in routes or []:
        table.add(cidr, mac)
    transmitted: list[tuple[bytes, Route]] = []
    layers: list[Layer] = [
        RouterDeviceLayer(stats),
        IpForwardLayer(stats, table),
        RewriteLayer(
            stats,
            MacAddress.parse(router_mac),
            transmit=lambda frame, route: transmitted.append((frame, route)),
        ),
    ]
    return ForwardingPath(
        layers=layers, table=table, stats=stats, transmitted=transmitted
    )
