"""UDP: header parse/serialize with optional checksum.

Small-message protocols in the paper's sense — DNS, NFS control, and
the signalling example — ride on UDP here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import ChecksumError, ProtocolError
from .checksum import internet_checksum
from .ip import IPv4Address, pseudo_header

HEADER_LEN = 8
_HEADER = struct.Struct("!HHHH")


@dataclass(frozen=True)
class UdpHeader:
    """A parsed UDP header."""

    src_port: int
    dst_port: int
    length: int

    @classmethod
    def parse(
        cls,
        data: bytes | memoryview,
        src: IPv4Address | None = None,
        dst: IPv4Address | None = None,
        verify: bool = False,
    ) -> tuple["UdpHeader", bytes]:
        data = bytes(data)
        if len(data) < HEADER_LEN:
            raise ProtocolError(f"UDP header needs 8 bytes, got {len(data)}")
        src_port, dst_port, length, checksum = _HEADER.unpack_from(data)
        if length < HEADER_LEN or length > len(data):
            raise ProtocolError(f"bad UDP length {length} (datagram {len(data)})")
        if verify and checksum != 0:
            if src is None or dst is None:
                raise ProtocolError("checksum verification needs src/dst addresses")
            from .ip import PROTO_UDP

            pseudo = pseudo_header(src, dst, PROTO_UDP, length)
            if internet_checksum(pseudo + data[:length]) != 0:
                raise ChecksumError("UDP checksum failed")
        header = cls(src_port=src_port, dst_port=dst_port, length=length)
        return header, data[HEADER_LEN:length]


def build_datagram(
    src_port: int,
    dst_port: int,
    payload: bytes,
    src: IPv4Address | None = None,
    dst: IPv4Address | None = None,
) -> bytes:
    """Serialize a UDP datagram; checksummed when addresses are given."""
    length = HEADER_LEN + len(payload)
    if length > 0xFFFF:
        raise ProtocolError(f"UDP datagram of {length} bytes exceeds 65535")
    base = _HEADER.pack(src_port, dst_port, length, 0) + payload
    if src is None or dst is None:
        return base
    from .ip import PROTO_UDP

    pseudo = pseudo_header(src, dst, PROTO_UDP, length)
    checksum = internet_checksum(pseudo + base)
    if checksum == 0:
        checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
    return base[:6] + struct.pack("!H", checksum) + base[8:]
