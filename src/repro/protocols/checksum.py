"""The Internet checksum: simple and elaborate implementations.

Section 5.1 compares the elaborate, unrolled 4.4BSD ``in_cksum`` (1104
bytes of code, 992 active) with "a very simple version (288 bytes of
active code) which was smaller, but required more processing per byte".
Both implementations here compute the genuine RFC 1071 one's-complement
sum — property tests assert they always agree — and each carries a
:class:`ChecksumCostModel` describing its code footprint and per-byte
cost, which is what the Figure 8 experiment charges against the cache
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..buffers.mbuf import MbufChain
from ..errors import ChecksumError, ConfigurationError


def _fold(total: int) -> int:
    """Fold a 32+ bit one's-complement accumulator to 16 bits."""
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes | bytearray | memoryview, csum: int = 0) -> int:
    """RFC 1071 Internet checksum of ``data`` — the *simple* routine.

    A straightforward word-at-a-time loop: minimal code, more work per
    byte.  ``csum`` continues a previous partial sum (pass the previous
    call's *complemented* output through :func:`continue_checksum` for
    chained use; this low-level form takes the raw accumulator).
    """
    data = memoryview(data).cast("B")
    total = csum
    length = len(data)
    end = length - (length % 2)
    for index in range(0, end, 2):
        total += (data[index] << 8) | data[index + 1]
    if length % 2:
        total += data[length - 1] << 8
    return (~_fold(total)) & 0xFFFF


def internet_checksum_unrolled(data: bytes | bytearray | memoryview, csum: int = 0) -> int:
    """RFC 1071 checksum — the *elaborate* (4.4BSD-style) routine.

    Processes 16 words (32 bytes) per outer iteration with the loop
    body fully unrolled, then mops up the tail.  Much more code; fewer
    loop-control operations per byte.  Always agrees with
    :func:`internet_checksum`.
    """
    data = memoryview(data).cast("B")
    total = csum
    length = len(data)
    index = 0
    # Unrolled main loop: 32 bytes per iteration, as in_cksum does.
    while length - index >= 32:
        chunk = data[index : index + 32]
        total += (
            (chunk[0] << 8 | chunk[1])
            + (chunk[2] << 8 | chunk[3])
            + (chunk[4] << 8 | chunk[5])
            + (chunk[6] << 8 | chunk[7])
            + (chunk[8] << 8 | chunk[9])
            + (chunk[10] << 8 | chunk[11])
            + (chunk[12] << 8 | chunk[13])
            + (chunk[14] << 8 | chunk[15])
            + (chunk[16] << 8 | chunk[17])
            + (chunk[18] << 8 | chunk[19])
            + (chunk[20] << 8 | chunk[21])
            + (chunk[22] << 8 | chunk[23])
            + (chunk[24] << 8 | chunk[25])
            + (chunk[26] << 8 | chunk[27])
            + (chunk[28] << 8 | chunk[29])
            + (chunk[30] << 8 | chunk[31])
        )
        index += 32
    while length - index >= 2:
        total += data[index] << 8 | data[index + 1]
        index += 2
    if index < length:
        total += data[length - 1] << 8
    return (~_fold(total)) & 0xFFFF


def checksum_chain(chain: MbufChain, simple: bool = True) -> int:
    """Checksum an mbuf chain, handling odd segment boundaries.

    This is where "a buffer layer can easily grow in complexity to
    swamp the protocol itself": a segment that ends on an odd byte
    leaves the next segment's bytes swapped relative to word alignment.
    We accumulate with explicit parity tracking, which is what the real
    ``in_cksum`` does with its byte-swap dance.
    """
    total = 0
    odd = False
    for mbuf in chain:
        segment = bytes(mbuf.data())
        if not segment:
            continue
        if odd:
            # The first byte of this segment is the low half of the
            # previous word.
            total += segment[0]
            segment = segment[1:]
            odd = False
        length = len(segment)
        end = length - (length % 2)
        if simple:
            for index in range(0, end, 2):
                total += (segment[index] << 8) | segment[index + 1]
        else:
            # Reuse the unrolled kernel on the even-aligned middle.
            partial = internet_checksum_unrolled(segment[:end])
            total += (~partial) & 0xFFFF
        if length % 2:
            total += segment[length - 1] << 8
            odd = True
    return (~_fold(total)) & 0xFFFF


def incremental_checksum_update(
    checksum: int, old_field: int, new_field: int
) -> int:
    """RFC 1624 incremental update of a 16-bit one's-complement checksum.

    Given a header's current ``checksum`` and a 16-bit field changing
    from ``old_field`` to ``new_field`` (e.g. the TTL/protocol word when
    a router decrements TTL), returns the new checksum without touching
    the rest of the header — the per-hop fast path every router uses.

    Uses the corrected form HC' = ~(~HC + ~m + m') to avoid the
    -0/+0 ambiguity of RFC 1141.
    """
    for value, name in ((checksum, "checksum"), (old_field, "old field"),
                        (new_field, "new field")):
        if not 0 <= value <= 0xFFFF:
            raise ConfigurationError(f"{name} {value:#x} is not a 16-bit value")
    total = (~checksum & 0xFFFF) + (~old_field & 0xFFFF) + new_field
    return (~_fold(total)) & 0xFFFF


def verify_checksum(data: bytes, expected: int) -> None:
    """Raise :class:`ChecksumError` unless ``data`` checks to ``expected``."""
    actual = internet_checksum(data)
    if actual != expected:
        raise ChecksumError(
            f"checksum mismatch: computed {actual:#06x}, expected {expected:#06x}"
        )


@dataclass(frozen=True)
class ChecksumCostModel:
    """Cycle/footprint model of one checksum routine (Figure 8 inputs).

    Attributes
    ----------
    name:
        Display name.
    code_bytes:
        Total size of the routine.
    active_code_bytes:
        Bytes actually executed for messages larger than one unrolled
        block (992 of 1104 for 4.4BSD; 288 for the simple routine).
    setup_cycles:
        Fixed per-call overhead (entry, mbuf walk setup, fold, return).
    cycles_per_byte:
        Steady-state per-byte cost with a warm cache.
    """

    name: str
    code_bytes: int
    active_code_bytes: int
    setup_cycles: float
    cycles_per_byte: float

    def __post_init__(self) -> None:
        if self.active_code_bytes > self.code_bytes:
            raise ConfigurationError(
                "active code cannot exceed total code size"
            )
        if min(self.setup_cycles, self.cycles_per_byte) < 0:
            raise ConfigurationError("cycle costs must be non-negative")

    def warm_cycles(self, message_bytes: int) -> float:
        """Execution cycles with the routine already cached."""
        return self.setup_cycles + self.cycles_per_byte * message_bytes

    def cold_extra_lines(self, line_size: int = 32) -> int:
        """Cache lines fetched when the routine starts cold."""
        return -(-self.active_code_bytes // line_size)


#: The elaborate 4.4BSD in_cksum compiled for the Alpha: 1104 bytes,
#: "992 of which are in the working code set for messages larger than
#: 32 bytes".  Warm-cache per-byte cost is low thanks to unrolling.
BSD_CKSUM_MODEL = ChecksumCostModel(
    name="4.4BSD",
    code_bytes=1104,
    active_code_bytes=992,
    setup_cycles=116.0,
    cycles_per_byte=0.72,
)

#: The simple routine: 288 bytes of active code, cheaper to fault in,
#: more cycles per byte.
SIMPLE_CKSUM_MODEL = ChecksumCostModel(
    name="Simple",
    code_bytes=288,
    active_code_bytes=288,
    setup_cycles=86.0,
    cycles_per_byte=1.0,
)
