"""Crafting valid frames — the "remote sender" side of experiments.

Tests, examples, and workload generators use these helpers to compose
fully valid Ethernet/IP/TCP(UDP) frames, including a tiny client-side
TCP sender that performs the handshake and streams data segments the
receive stack will accept.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProtocolError
from . import ethernet
from .ethernet import ETHERTYPE_IP, MacAddress
from .ip import IPv4Address, IPv4Header, PROTO_TCP, PROTO_UDP
from .tcp import FLAG_ACK, FLAG_FIN, FLAG_SYN, TcpHeader, seq_add
from .udp import build_datagram as build_udp_datagram

DEFAULT_SRC_MAC = MacAddress.parse("02:00:00:00:00:01")
DEFAULT_DST_MAC = MacAddress.parse("02:00:00:00:00:02")


def ip_frame(
    src: str,
    dst: str,
    protocol: int,
    payload: bytes,
    src_mac: MacAddress = DEFAULT_SRC_MAC,
    dst_mac: MacAddress = DEFAULT_DST_MAC,
    ttl: int = 64,
    identification: int = 0,
) -> bytes:
    """An Ethernet frame carrying one IPv4 datagram."""
    src_addr = IPv4Address.parse(src)
    dst_addr = IPv4Address.parse(dst)
    header = IPv4Header(
        src=src_addr,
        dst=dst_addr,
        protocol=protocol,
        total_length=20 + len(payload),
        ttl=ttl,
        identification=identification,
    )
    datagram = header.serialize() + payload
    return ethernet.frame(dst_mac, src_mac, ETHERTYPE_IP, datagram)


def udp_frame(
    src: str, dst: str, src_port: int, dst_port: int, payload: bytes
) -> bytes:
    """A complete UDP-in-IP-in-Ethernet frame with valid checksums."""
    datagram = build_udp_datagram(
        src_port,
        dst_port,
        payload,
        src=IPv4Address.parse(src),
        dst=IPv4Address.parse(dst),
    )
    return ip_frame(src, dst, PROTO_UDP, datagram)


@dataclass
class TcpSender:
    """A minimal client-side TCP: handshake, data, teardown.

    Produces frames the :class:`~repro.protocols.stack.TcpReceiveStack`
    accepts; consumes the receiver's emitted headers to advance its own
    state.  Not a full TCP — just enough to be a real conversation
    partner for receive-side experiments.
    """

    src: str
    dst: str
    src_port: int
    dst_port: int
    iss: int = 0x5000
    snd_nxt: int = field(init=False)
    rcv_nxt: int = field(init=False, default=0)
    established: bool = field(init=False, default=False)
    _ident: int = field(init=False, default=1)

    def __post_init__(self) -> None:
        self.snd_nxt = self.iss

    # ------------------------------------------------------------------
    def _segment_frame(self, header: TcpHeader, payload: bytes = b"") -> bytes:
        segment = header.serialize(
            payload,
            src=IPv4Address.parse(self.src),
            dst=IPv4Address.parse(self.dst),
        )
        frame = ip_frame(
            self.src, self.dst, PROTO_TCP, segment, identification=self._ident
        )
        self._ident += 1
        return frame

    def syn(self) -> bytes:
        """The opening SYN."""
        header = TcpHeader(
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.snd_nxt,
            ack=0,
            flags=FLAG_SYN,
        )
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        return self._segment_frame(header)

    def complete_handshake(self, synack: TcpHeader) -> bytes:
        """Consume the receiver's SYN-ACK; produce the final ACK."""
        if not (synack.flags & FLAG_SYN and synack.flags & FLAG_ACK):
            raise ProtocolError("expected a SYN-ACK to complete the handshake")
        if synack.ack != self.snd_nxt:
            raise ProtocolError(
                f"SYN-ACK acknowledges {synack.ack:#x}, expected {self.snd_nxt:#x}"
            )
        self.rcv_nxt = seq_add(synack.seq, 1)
        self.established = True
        header = TcpHeader(
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.snd_nxt,
            ack=self.rcv_nxt,
            flags=FLAG_ACK,
        )
        return self._segment_frame(header)

    def data(self, payload: bytes, push: bool = False) -> bytes:
        """A data segment at the current send sequence."""
        if not self.established:
            raise ProtocolError("cannot send data before the handshake completes")
        flags = FLAG_ACK | (0x08 if push else 0)
        header = TcpHeader(
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.snd_nxt,
            ack=self.rcv_nxt,
            flags=flags,
        )
        self.snd_nxt = seq_add(self.snd_nxt, len(payload))
        return self._segment_frame(header, payload)

    def fin(self) -> bytes:
        """Start teardown."""
        header = TcpHeader(
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.snd_nxt,
            ack=self.rcv_nxt,
            flags=FLAG_FIN | FLAG_ACK,
        )
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        return self._segment_frame(header)

    def ack_of(self, header: TcpHeader) -> bytes:
        """Acknowledge a receiver segment (e.g. its FIN-ACK)."""
        advance = 1 if header.flags & (FLAG_FIN | FLAG_SYN) else 0
        self.rcv_nxt = seq_add(header.seq, advance)
        ack = TcpHeader(
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=self.snd_nxt,
            ack=self.rcv_nxt,
            flags=FLAG_ACK,
        )
        return self._segment_frame(ack)
