"""Legacy setup shim.

This environment has no network access and no ``wheel`` package, so
PEP 660 editable installs fail.  With this shim,
``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``python setup.py develop``) installs the package offline.
"""

from setuptools import setup

setup()
